"""Tests for workload statistics."""

import pytest

from repro.experiments.workloads import eval_workload
from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord
from repro.trace.stats import Distribution, compute_stats, render_stats


def record(notification_id, recipient=1, kind=TopicKind.FRIEND, timestamp=0.0,
           hovered=False, clicked=False, click_time=None):
    return NotificationRecord(
        notification_id=notification_id,
        recipient_id=recipient,
        sender_id=99,
        kind=kind,
        track_id=1,
        album_id=1,
        artist_id=1,
        track_popularity=50,
        album_popularity=50,
        artist_popularity=50,
        tie_strength=0.0,
        is_friend=False,
        favorite_genre=False,
        timestamp=timestamp,
        hovered=hovered or clicked,
        clicked=clicked,
        click_time=click_time,
    )


class TestDistribution:
    def test_summary_values(self):
        dist = Distribution.of([1, 2, 3, 4, 100])
        assert dist.count == 5
        assert dist.mean == 22.0
        assert dist.minimum == 1
        assert dist.median == 3
        assert dist.maximum == 100

    def test_single_value(self):
        dist = Distribution.of([7.0])
        assert dist.mean == dist.median == dist.p90 == 7.0
        assert dist.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution.of([])


class TestComputeStats:
    def test_counts_and_rates(self):
        records = [
            record(1, recipient=1, clicked=True, timestamp=100.0, click_time=400.0),
            record(2, recipient=1, hovered=True, timestamp=200.0),
            record(3, recipient=2, kind=TopicKind.ARTIST, timestamp=300.0),
        ]
        stats = compute_stats(records)
        assert stats.total_records == 3
        assert stats.users == 2
        assert stats.per_kind[TopicKind.FRIEND] == 2
        assert stats.per_kind[TopicKind.ARTIST] == 1
        assert stats.attention_rate == pytest.approx(2 / 3)
        assert stats.click_rate == pytest.approx(1 / 3)
        assert stats.click_rate_given_attention == pytest.approx(1 / 2)
        assert stats.mean_click_delay_s == pytest.approx(300.0)
        assert stats.friend_fraction() == pytest.approx(2 / 3)

    def test_hourly_volume_and_peak(self):
        records = [
            record(1, timestamp=10 * 3600.0 + 30),
            record(2, timestamp=10 * 3600.0 + 60),
            record(3, timestamp=22 * 3600.0),
        ]
        stats = compute_stats(records)
        assert stats.hourly_volume[10] == 2
        assert stats.peak_hour() == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_stats([])

    def test_on_synthetic_workload(self):
        """Calibration sanity: friend feeds dominate, evening peak."""
        workload = eval_workload("small")
        stats = compute_stats(workload.records)
        assert stats.friend_fraction() > 0.5
        assert 0.4 <= stats.attention_rate <= 0.7
        assert 12 <= stats.peak_hour() <= 23  # diurnal afternoon/evening


class TestRenderStats:
    def test_report_contains_key_lines(self):
        records = [record(1, clicked=True, timestamp=100.0, click_time=700.0)]
        text = render_stats(compute_stats(records))
        assert "notifications : 1" in text
        assert "friend fraction" in text
        assert "peak hour" in text
