"""Tests for text reporting and the ASCII chart renderer."""

import pytest

from repro.experiments.figures import FigureSeries
from repro.experiments.reporting import render_ascii_chart, render_series_table


def demo_series():
    return FigureSeries(
        figure="demo",
        metric="utility",
        budgets_mb=(1.0, 10.0, 100.0),
        series={
            "RichNote": {1.0: 0.2, 10.0: 0.6, 100.0: 1.0},
            "UTIL-L3": {1.0: 0.1, 10.0: 0.4, 100.0: 0.5},
        },
    )


class TestSeriesTable:
    def test_rows_and_columns(self):
        text = render_series_table(demo_series())
        lines = text.splitlines()
        assert lines[0] == "# utility"
        assert "1MB" in lines[1] and "100MB" in lines[1]
        assert any(line.startswith("RichNote") for line in lines)
        assert any(line.startswith("UTIL-L3") for line in lines)

    def test_precision_respected(self):
        text = render_series_table(demo_series(), precision=1)
        assert "0.2" in text and "0.20" not in text


class TestAsciiChart:
    def test_contains_axes_and_legend(self):
        chart = render_ascii_chart(demo_series(), width=30, height=8)
        lines = chart.splitlines()
        assert lines[0].startswith("# utility")
        assert lines[-1].strip().startswith("o=")
        assert any(line.startswith("+---") for line in lines)
        # One glyph per method present somewhere on the canvas.
        canvas = "\n".join(lines[1:-3])
        assert "o" in canvas and "x" in canvas

    def test_extremes_hit_the_borders(self):
        chart = render_ascii_chart(demo_series(), width=30, height=8)
        rows = [line[1:] for line in chart.splitlines()[1:9]]
        # Max value (RichNote at 100MB) on the top row, rightmost column.
        assert rows[0].rstrip().endswith(("o", "x"))
        # Min value on the bottom row, leftmost column.
        assert rows[-1][0] in "ox"

    def test_flat_series_does_not_crash(self):
        series = FigureSeries(
            figure="f", metric="flat", budgets_mb=(1.0, 10.0),
            series={"A": {1.0: 0.5, 10.0: 0.5}},
        )
        chart = render_ascii_chart(series, width=20, height=5)
        assert "A" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            render_ascii_chart(demo_series(), width=5, height=8)
        single = FigureSeries(
            figure="f", metric="m", budgets_mb=(1.0,),
            series={"A": {1.0: 0.5}},
        )
        with pytest.raises(ValueError):
            render_ascii_chart(single)

    def test_linear_x_axis(self):
        chart = render_ascii_chart(demo_series(), width=30, height=8, log_x=False)
        assert "utility" in chart


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path):
        from repro.experiments.reporting import load_series_csv, save_series_csv

        series = demo_series()
        path = tmp_path / "fig.csv"
        save_series_csv(series, path)
        loaded = load_series_csv(path)
        assert loaded.metric == series.metric
        assert loaded.budgets_mb == series.budgets_mb
        assert loaded.series == series.series

    def test_load_rejects_foreign_csv(self, tmp_path):
        from repro.experiments.reporting import load_series_csv

        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_series_csv(path)

    def test_load_rejects_ragged_rows(self, tmp_path):
        from repro.experiments.reporting import load_series_csv

        path = tmp_path / "ragged.csv"
        path.write_text("metric,m\nmethod,1,10\nA,0.5\n")
        with pytest.raises(ValueError, match="wrong width"):
            load_series_csv(path)
