"""Executable-documentation guard for docs/EXTENDING.md."""

import re
from pathlib import Path

import pytest

DOC = Path(__file__).resolve().parent.parent / "docs" / "EXTENDING.md"


def python_blocks() -> list[str]:
    text = DOC.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestExtendingDoc:
    def test_has_twelve_walkthroughs(self):
        assert len(python_blocks()) == 12

    @pytest.mark.parametrize(
        "index,block",
        list(enumerate(python_blocks())),
        ids=[f"block{i}" for i in range(len(python_blocks()))],
    )
    def test_snippet_executes(self, index, block):
        exec(compile(block, f"EXTENDING.md:python-block-{index}", "exec"), {})
