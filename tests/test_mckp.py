"""Tests for the MCKP greedy heuristic (Algorithm 1) and exact solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mckp import (
    MckpInstance,
    MckpItem,
    fractional_upper_bound,
    select_presentations,
    solve_exact_dp,
)


def concave_item(key: int, sizes: list[int], utilities: list[float]) -> MckpItem:
    return MckpItem(key=key, sizes=tuple(sizes), profits=tuple(utilities))


class TestMckpItem:
    def test_level_zero_must_be_free(self):
        with pytest.raises(ValueError):
            MckpItem(key=0, sizes=(10, 20), profits=(0.0, 1.0))

    def test_sizes_strictly_increase(self):
        with pytest.raises(ValueError):
            MckpItem(key=0, sizes=(0, 10, 10), profits=(0.0, 1.0, 2.0))

    def test_profile_lengths_must_match(self):
        with pytest.raises(ValueError):
            MckpItem(key=0, sizes=(0, 10), profits=(0.0,))


class TestGreedy:
    def test_empty_instance(self):
        solution = select_presentations(MckpInstance(items=(), budget=100))
        assert solution.levels == {}
        assert solution.total_profit == 0.0

    def test_zero_budget_selects_nothing(self):
        item = concave_item(1, [0, 10], [0.0, 1.0])
        solution = select_presentations(MckpInstance(items=(item,), budget=0))
        assert solution.levels[1] == 0
        assert solution.selected_keys() == []

    def test_single_item_upgrades_fully_within_budget(self):
        item = concave_item(1, [0, 10, 30], [0.0, 1.0, 1.5])
        solution = select_presentations(MckpInstance(items=(item,), budget=100))
        assert solution.levels[1] == 2
        assert solution.total_size == 30
        assert solution.total_profit == pytest.approx(1.5)

    def test_budget_respected(self):
        item = concave_item(1, [0, 10, 30], [0.0, 1.0, 1.5])
        solution = select_presentations(MckpInstance(items=(item,), budget=15))
        assert solution.levels[1] == 1

    def test_gradient_order_prefers_denser_upgrade(self):
        rich = concave_item(1, [0, 10], [0.0, 5.0])  # gradient 0.5
        poor = concave_item(2, [0, 10], [0.0, 1.0])  # gradient 0.1
        solution = select_presentations(
            MckpInstance(items=(poor, rich), budget=10)
        )
        assert solution.levels[1] == 1
        assert solution.levels[2] == 0

    def test_skips_unaffordable_but_continues_with_others(self):
        # The large item's first upgrade has the best gradient but does not
        # fit; cheaper upgrades elsewhere must still happen.
        big = concave_item(1, [0, 1000], [0.0, 100.0])
        small = concave_item(2, [0, 10], [0.0, 0.5])
        solution = select_presentations(MckpInstance(items=(big, small), budget=50))
        assert solution.levels[1] == 0
        assert solution.levels[2] == 1

    def test_non_positive_gradients_never_selected(self):
        # Lyapunov-adjusted profits can decrease with level.
        item = MckpItem(key=1, sizes=(0, 10, 20), profits=(0.0, 1.0, 0.5))
        solution = select_presentations(MckpInstance(items=(item,), budget=100))
        assert solution.levels[1] == 1

    def test_all_negative_profits_select_nothing(self):
        item = MckpItem(key=1, sizes=(0, 10), profits=(0.0, -1.0))
        solution = select_presentations(MckpInstance(items=(item,), budget=100))
        assert solution.levels[1] == 0

    def test_duplicate_keys_rejected(self):
        a = concave_item(1, [0, 10], [0.0, 1.0])
        with pytest.raises(ValueError):
            MckpInstance(items=(a, a), budget=10)


class TestExactAndBounds:
    def test_dp_matches_brute_force_small(self):
        items = (
            concave_item(1, [0, 3, 7], [0.0, 2.0, 3.0]),
            concave_item(2, [0, 4], [0.0, 2.5]),
            concave_item(3, [0, 2, 5], [0.0, 1.0, 2.2]),
        )
        instance = MckpInstance(items=items, budget=9)
        dp = solve_exact_dp(instance)
        # Brute force over level combinations.
        best = 0.0
        import itertools

        for levels in itertools.product(*(range(len(i.sizes)) for i in items)):
            size = sum(i.sizes[l] for i, l in zip(items, levels))
            if size <= 9:
                best = max(best, sum(i.profits[l] for i, l in zip(items, levels)))
        assert dp.total_profit == pytest.approx(best)

    def test_greedy_within_one_upgrade_of_optimum(self):
        """The paper's bound: greedy >= OPT - max single-upgrade profit."""
        items = (
            concave_item(1, [0, 3, 7], [0.0, 2.0, 3.0]),
            concave_item(2, [0, 4], [0.0, 2.5]),
            concave_item(3, [0, 2, 5], [0.0, 1.0, 2.2]),
        )
        instance = MckpInstance(items=items, budget=9)
        greedy = select_presentations(instance)
        optimum = solve_exact_dp(instance).total_profit
        max_gain = max(
            item.profits[level + 1] - item.profits[level]
            for item in items
            for level in range(len(item.sizes) - 1)
        )
        assert greedy.total_profit >= optimum - max_gain - 1e-9

    def test_fractional_bound_dominates_integral(self):
        items = (
            concave_item(1, [0, 3, 7], [0.0, 2.0, 3.0]),
            concave_item(2, [0, 4], [0.0, 2.5]),
        )
        instance = MckpInstance(items=items, budget=5)
        assert fractional_upper_bound(instance) >= solve_exact_dp(
            instance
        ).total_profit - 1e-9


@st.composite
def concave_instances(draw):
    """Random instances with concave (gradient-monotone) ladders."""
    n_items = draw(st.integers(min_value=1, max_value=6))
    items = []
    for key in range(n_items):
        n_levels = draw(st.integers(min_value=1, max_value=4))
        step_sizes = draw(
            st.lists(
                st.integers(min_value=1, max_value=40),
                min_size=n_levels,
                max_size=n_levels,
            )
        )
        # Build gradient-monotone profits: the utility-size gradient
        # (gain per byte) decreases with level, the concavity notion the
        # greedy's optimality argument uses.  Decreasing *gains* alone is
        # not enough when size steps are uneven.
        gradients = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
                    min_size=n_levels,
                    max_size=n_levels,
                )
            ),
            reverse=True,
        )
        sizes = [0]
        profits = [0.0]
        for step, gradient in zip(step_sizes, gradients):
            sizes.append(sizes[-1] + step)
            profits.append(profits[-1] + gradient * step)
        items.append(MckpItem(key=key, sizes=tuple(sizes), profits=tuple(profits)))
    budget = draw(st.integers(min_value=0, max_value=150))
    return MckpInstance(items=tuple(items), budget=budget)


class TestGreedyProperties:
    @given(concave_instances())
    @settings(max_examples=120, deadline=None)
    def test_never_exceeds_budget(self, instance):
        solution = select_presentations(instance)
        total = sum(
            item.sizes[solution.levels[item.key]] for item in instance.items
        )
        assert total <= instance.budget
        assert total == solution.total_size

    @given(concave_instances())
    @settings(max_examples=120, deadline=None)
    def test_profit_accounting_consistent(self, instance):
        solution = select_presentations(instance)
        total = sum(
            item.profits[solution.levels[item.key]] for item in instance.items
        )
        assert solution.total_profit == pytest.approx(total)

    @given(concave_instances())
    @settings(max_examples=80, deadline=None)
    def test_greedy_within_bound_of_dp(self, instance):
        greedy = select_presentations(instance)
        optimum = solve_exact_dp(instance).total_profit
        max_gain = max(
            (
                item.profits[level + 1] - item.profits[level]
                for item in instance.items
                for level in range(len(item.sizes) - 1)
            ),
            default=0.0,
        )
        assert greedy.total_profit >= optimum - max_gain - 1e-9
        assert greedy.total_profit <= optimum + 1e-9

    @given(concave_instances())
    @settings(max_examples=80, deadline=None)
    def test_fractional_bound_above_dp(self, instance):
        assert (
            fractional_upper_bound(instance)
            >= solve_exact_dp(instance).total_profit - 1e-9
        )

    @given(concave_instances(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_near_monotone_in_budget(self, instance, extra):
        """More budget cannot cost more than one upgrade's worth of profit.

        (Exact monotonicity does not hold for skip-and-continue greedy in
        general; the one-upgrade bound follows from the optimality-gap
        guarantee at both budgets.)
        """
        smaller = select_presentations(instance)
        larger = select_presentations(
            MckpInstance(items=instance.items, budget=instance.budget + extra)
        )
        max_gain = max(
            (
                item.profits[level + 1] - item.profits[level]
                for item in instance.items
                for level in range(len(item.sizes) - 1)
            ),
            default=0.0,
        )
        assert larger.total_profit >= smaller.total_profit - max_gain - 1e-9
