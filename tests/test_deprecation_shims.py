"""The pre-runtime import paths keep working, but warn.

``repro.core.scheduler`` and ``repro.core.baselines`` are compatibility
shims over the layered runtime: the concrete scheduler classes construct a
:class:`repro.runtime.loop.RoundLoop` and bind the matching registry
policy.  Constructing one emits a :class:`DeprecationWarning` naming the
replacement; the extension seams (:class:`RoundBasedScheduler`,
:class:`FixedLevelScheduler`) stay warning-free because downstream code
subclasses them.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.runtime.loop import RoundLoop
from repro.runtime.policy import FifoPolicy, RichNotePolicy, UtilPolicy
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()


def make_kwargs(user_id=1):
    battery = BatteryTrace([BatterySample(time=0.0, level=1.0, charging=True)])
    return dict(
        device=MobileDevice(
            user_id=user_id, network=CellularOnlyNetwork(), battery=battery
        ),
        data_budget=DataBudget(theta_bytes=1_000_000.0),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


class TestOldPathsStillResolve:
    def test_types_reexported_from_core_scheduler(self):
        from repro.core.scheduler import Delivery, DroppedItem, RoundResult
        from repro.runtime import types

        assert Delivery is types.Delivery
        assert DroppedItem is types.DroppedItem
        assert RoundResult is types.RoundResult

    def test_package_root_exports_unchanged(self):
        import repro

        assert repro.RichNoteScheduler is not None
        assert repro.FifoScheduler is not None
        assert repro.UtilScheduler is not None

    def test_shim_schedulers_are_round_loops_with_bound_policies(self):
        from repro.core.baselines import FifoScheduler, UtilScheduler
        from repro.core.scheduler import RichNoteScheduler

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            richnote = RichNoteScheduler(**make_kwargs())
            fifo = FifoScheduler(fixed_level=2, **make_kwargs())
            util = UtilScheduler(fixed_level=3, **make_kwargs())
        assert isinstance(richnote, RoundLoop)
        assert isinstance(richnote.policy, RichNotePolicy)
        assert isinstance(fifo.policy, FifoPolicy)
        assert fifo.fixed_level == 2
        assert isinstance(util.policy, UtilPolicy)
        assert util.fixed_level == 3


class TestDeprecationWarnings:
    @pytest.mark.parametrize("name", ["RichNoteScheduler"])
    def test_richnote_shim_warns_and_names_replacement(self, name):
        from repro.core import scheduler

        with pytest.warns(DeprecationWarning, match="repro.runtime.RoundLoop"):
            getattr(scheduler, name)(**make_kwargs())

    @pytest.mark.parametrize("name", ["FifoScheduler", "UtilScheduler"])
    def test_baseline_shims_warn_and_name_replacement(self, name):
        from repro.core import baselines

        with pytest.warns(DeprecationWarning, match="registry.create"):
            getattr(baselines, name)(fixed_level=2, **make_kwargs())

    def test_experiments_parallel_shim_is_gone(self):
        """The ``experiments.parallel`` shim finished its deprecation
        cycle (introduced in ISSUE 8, removed in ISSUE 9); the canonical
        import is :func:`repro.experiments.pool.run_experiment_parallel`.
        """
        with pytest.raises(ModuleNotFoundError):
            import repro.experiments.parallel  # noqa: F401

        from repro.experiments import run_experiment_parallel
        from repro.experiments.pool import (
            run_experiment_parallel as canonical,
        )

        assert run_experiment_parallel is canonical

    def test_extension_seams_do_not_warn(self):
        from repro.core.baselines import FixedLevelScheduler
        from repro.core.scheduler import RoundBasedScheduler

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RoundBasedScheduler(**make_kwargs())

            class EverythingAtOne(FixedLevelScheduler):
                def _ordered_queue(self, now):
                    return list(self._selectable(now))

            EverythingAtOne(fixed_level=1, **make_kwargs())


class TestShimBehaviour:
    def test_shim_delivers_like_a_bound_loop(self):
        from repro.core.scheduler import RichNoteScheduler
        from repro.runtime import registry

        item = dict(
            item_id=1,
            user_id=1,
            kind=ContentKind.FRIEND_FEED,
            created_at=0.0,
            ladder=LADDER,
            content_utility=0.9,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = RichNoteScheduler(**make_kwargs())
        loop = RoundLoop(
            **make_kwargs(), policy=registry.create("richnote")
        )
        shim.enqueue(ContentItem(**item))
        loop.enqueue(ContentItem(**item))
        shim_result = shim.run_round(3600.0, 3600.0)
        loop_result = loop.run_round(3600.0, 3600.0)
        assert [
            (d.item.item_id, d.level, d.size_bytes, d.utility)
            for d in shim_result.deliveries
        ] == [
            (d.item.item_id, d.level, d.size_bytes, d.utility)
            for d in loop_result.deliveries
        ]

    def test_shim_exposes_controller_and_history(self):
        from repro.core.scheduler import RichNoteScheduler

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = RichNoteScheduler(**make_kwargs())
        assert shim.controller is shim.policy.controller
        shim.run_round(3600.0, 3600.0)
        assert len(shim.lyapunov_history) == 1
        assert shim.lyapunov_value() == pytest.approx(shim.lyapunov_history[-1])
