"""Tests for probability-calibration diagnostics."""

import numpy as np
import pytest

from repro.ml.calibration import (
    brier_score,
    calibration_curve,
    expected_calibration_error,
    render_reliability,
)


class TestBrierScore:
    def test_perfect_predictions(self):
        assert brier_score([0, 1, 1], [0.0, 1.0, 1.0]) == 0.0

    def test_constant_half(self):
        assert brier_score([0, 1, 0, 1], [0.5] * 4) == pytest.approx(0.25)

    def test_confidently_wrong_is_worst(self):
        assert brier_score([0, 1], [1.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            brier_score([0, 1], [0.5])
        with pytest.raises(ValueError):
            brier_score([0, 2], [0.5, 0.5])
        with pytest.raises(ValueError):
            brier_score([0, 1], [0.5, 1.5])
        with pytest.raises(ValueError):
            brier_score([], [])


class TestCalibrationCurve:
    def test_bins_cover_predictions(self):
        y = [0, 0, 1, 1]
        p = [0.05, 0.15, 0.85, 0.95]
        bins = calibration_curve(y, p, n_bins=10)
        assert sum(b.count for b in bins) == 4
        assert all(b.lower < b.upper for b in bins)

    def test_probability_one_lands_in_last_bin(self):
        bins = calibration_curve([1], [1.0], n_bins=10)
        assert len(bins) == 1
        assert bins[0].upper == 1.0

    def test_observed_rate_correct(self):
        y = [1, 0, 1, 1]
        p = [0.72, 0.74, 0.76, 0.78]
        bins = calibration_curve(y, p, n_bins=10)
        assert len(bins) == 1
        assert bins[0].observed_rate == pytest.approx(0.75)
        assert bins[0].mean_predicted == pytest.approx(0.75)
        assert bins[0].gap == pytest.approx(0.0)

    def test_render(self):
        text = render_reliability(calibration_curve([1, 0], [0.9, 0.1]))
        assert "predicted" in text
        assert "[0.9,1.0)" in text or "[0.8,0.9)" in text


class TestEce:
    def test_well_calibrated_near_zero(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(size=20_000)
        y = (rng.uniform(size=20_000) < p).astype(int)
        assert expected_calibration_error(y, p) < 0.02

    def test_miscalibrated_detected(self):
        rng = np.random.default_rng(1)
        p = np.full(5000, 0.9)
        y = (rng.uniform(size=5000) < 0.5).astype(int)  # true rate 0.5
        assert expected_calibration_error(y, p) == pytest.approx(0.4, abs=0.03)

    def test_forest_probabilities_reasonably_calibrated(self):
        """The RF's averaged leaves should beat a constant predictor."""
        from repro.experiments.workloads import eval_workload
        from repro.ml.dataset import build_training_set
        from repro.ml.forest import RandomForestClassifier

        workload = eval_workload("small")
        x, y = build_training_set(workload.records)
        split = int(0.7 * len(x))
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=0
        ).fit(x[:split], y[:split])
        p = forest.predict_proba(x[split:])[:, 1]
        held_out = y[split:]
        constant = np.full(len(held_out), y[:split].mean())
        assert brier_score(held_out, p) < brier_score(held_out, constant)
        assert expected_calibration_error(held_out, p) < 0.15
