"""ISSUE 10's execution surface: shard-parallel runs + batched kernels.

Three contracts under test:

* **Shard-parallel determinism** -- splitting a shard store across
  worker processes (:func:`run_store_columnar_parallel`,
  :meth:`ExperimentPool.run_cell_columnar`) must produce per-user
  outcomes bit-identical to the in-process columnar run and to the
  scalar pool path, regardless of how positions are partitioned.
* **Concurrent store readers** -- N processes memory-mapping the same
  :class:`TraceShardStore` observe byte-identical columns and records.
* **Batched multichannel kernels + dirty-set cache** -- the stacked
  (channel x level) kernels match their per-item scalar twins choice
  for choice, and the merged-row cache both engages on stable queues
  and invalidates across ``run(limit_rounds=...)`` resume boundaries.
"""

from __future__ import annotations

import hashlib
import random
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.channels import ChannelSet, builtin_channel
from repro.core.presentations import build_audio_ladder
from repro.experiments.columnar import (
    build_cohort,
    fold_outcomes,
    make_engine,
    run_users_columnar,
)
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.pool import (
    ExperimentPool,
    _contiguous_ranges,
    available_cores,
    oracle_scores,
    run_store_columnar_parallel,
)
from repro.experiments.runner import UtilityAnnotations
from repro.experiments.workloads import workload_spec
from repro.runtime.kernels import (
    hull_levels,
    hull_levels_batched,
    merge_channel_rows,
    merge_channel_rows_batched,
)
from repro.trace.generator import TraceConfig, build_workload, iter_users
from repro.trace.io import SHARD_COLUMNS, TraceShardStore, write_shard_store

SPEC = MethodSpec(Method.RICHNOTE)


def _stream_pairs(n_users, seed=41, min_pairs=None):
    pairs = [(u, r) for u, r in iter_users(n_users, TraceConfig(seed=seed)) if r]
    if min_pairs is not None:
        assert len(pairs) >= min_pairs
    return pairs


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A small shard store plus its source pairs and duration."""
    pairs = _stream_pairs(60, min_pairs=40)
    path = tmp_path_factory.mktemp("shards") / "store"
    write_shard_store(path, pairs)
    duration = TraceConfig(seed=41).duration_hours * 3600.0
    return str(path), pairs, duration


# -- concurrent multi-process readers ------------------------------------------


def _read_store_fingerprint(path: str, positions: tuple[int, ...]) -> dict:
    """Open the store fresh and fingerprint its bytes (runs in workers)."""
    with TraceShardStore(path) as shard_store:
        fingerprint = {
            name: hashlib.sha256(
                np.ascontiguousarray(shard_store.column(name)).tobytes()
            ).hexdigest()
            for name in SHARD_COLUMNS
        }
        fingerprint["user_ids"] = hashlib.sha256(
            np.ascontiguousarray(shard_store.user_ids).tobytes()
        ).hexdigest()
        fingerprint["offsets"] = hashlib.sha256(
            np.ascontiguousarray(shard_store.offsets).tobytes()
        ).hexdigest()
        fingerprint["records"] = hashlib.sha256(
            repr(
                [shard_store.records_at(p) for p in positions]
            ).encode()
        ).hexdigest()
    return fingerprint


class TestConcurrentStoreReaders:
    def test_n_process_readers_see_identical_bytes(self, store):
        """The same store opened from N pool workers is byte-identical.

        Every worker memory-maps the same files concurrently; nothing is
        ever written after sealing, so all views (and the parent's) must
        fingerprint identically, column for column and record for record.
        """
        path, pairs, _ = store
        positions = tuple(range(0, len(pairs), 7))
        expected = _read_store_fingerprint(path, positions)
        with ProcessPoolExecutor(max_workers=3) as executor:
            futures = [
                executor.submit(_read_store_fingerprint, path, positions)
                for _ in range(6)
            ]
            for future in futures:
                assert future.result() == expected

    def test_records_round_trip(self, store):
        path, pairs, _ = store
        with TraceShardStore(path) as shard_store:
            for position, (user_id, records) in enumerate(pairs):
                assert int(shard_store.user_ids[position]) == user_id
                assert shard_store.records_at(position) == list(records)


# -- range partitioning --------------------------------------------------------


class TestContiguousRanges:
    def test_covers_all_positions_contiguously(self):
        rng = random.Random(3)
        for _ in range(50):
            counts = [rng.randrange(0, 40) for _ in range(rng.randrange(1, 60))]
            n_ranges = rng.randrange(1, 20)
            ranges = _contiguous_ranges(counts, n_ranges)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(counts)
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start
            assert all(start < stop for start, stop in ranges)
            assert len(ranges) == min(n_ranges, len(counts))

    def test_balances_record_mass(self):
        # One heavy head position must not drag the whole tail with it.
        counts = [1000] + [1] * 99
        ranges = _contiguous_ranges(counts, 4)
        assert ranges[0] == (0, 1)

    def test_empty(self):
        assert _contiguous_ranges([], 4) == []


class TestAvailableCores:
    def test_positive_int(self):
        cores = available_cores()
        assert isinstance(cores, int)
        assert cores >= 1


# -- shard-parallel execution --------------------------------------------------


class TestStoreColumnarParallel:
    def test_workers_split_is_bit_identical(self, store):
        """workers=1, workers=2 and the direct cohort run all agree.

        The workers=2 leg crosses real process boundaries (even on a
        single-core machine the pool still forks); digests, metrics and
        user order must match the in-process run exactly.
        """
        path, pairs, duration = store
        config = ExperimentConfig(seed=41)
        annotations = UtilityAnnotations(scores=oracle_scores(pairs))
        direct = run_users_columnar(
            pairs, SPEC, config, annotations, duration,
            digest_deliveries=True,
        )
        for workers in (1, 2):
            outcomes = run_store_columnar_parallel(
                path, SPEC, config, duration,
                workers=workers, digest_deliveries=True,
            )
            assert [o.metrics.user_id for o in outcomes] == [
                o.metrics.user_id for o in direct
            ]
            assert [o.delivery_digest for o in outcomes] == [
                o.delivery_digest for o in direct
            ]
            assert [o.metrics for o in outcomes] == [
                o.metrics for o in direct
            ]

    def test_workers_derive_their_own_oracle_scores(self, store):
        """annotations=None ships no score map; workers derive per-slice."""
        path, pairs, duration = store
        config = ExperimentConfig(seed=41)
        annotations = UtilityAnnotations(scores=oracle_scores(pairs))
        with_map = run_store_columnar_parallel(
            path, SPEC, config, duration,
            workers=2, annotations=annotations, digest_deliveries=True,
        )
        derived = run_store_columnar_parallel(
            path, SPEC, config, duration,
            workers=2, annotations=None, digest_deliveries=True,
        )
        assert [o.delivery_digest for o in derived] == [
            o.delivery_digest for o in with_map
        ]

    def test_unsupported_config_rejected(self, store):
        path, _, duration = store
        from repro.sim.faults import FaultConfig

        config = ExperimentConfig(
            seed=41, faults=FaultConfig(p_disconnect=0.2)
        )
        with pytest.raises(ValueError, match="paper-default"):
            run_store_columnar_parallel(path, SPEC, config, duration)


class TestRunCellColumnar:
    @pytest.fixture(scope="class")
    def pool_world(self, tmp_path_factory):
        workload = build_workload(workload_spec("small", seed=11))
        store_dir = tmp_path_factory.mktemp("pool") / "store"
        pool = ExperimentPool(
            workload,
            user_ids=workload.top_users(8),
            max_workers=2,
            shard_store_dir=store_dir,
        )
        yield pool
        pool.shutdown()

    def test_matches_scalar_cell(self, pool_world):
        """Columnar store-range execution == the scalar batch path."""
        config = ExperimentConfig(seed=11, weekly_budget_mb=5.0)
        scalar = pool_world.run_cell(SPEC, config, digest_deliveries=True)
        columnar = pool_world.run_cell_columnar(
            SPEC, config, digest_deliveries=True
        )
        assert columnar.aggregate == scalar.aggregate
        assert [o.delivery_digest for o in columnar.per_user] == [
            o.delivery_digest for o in scalar.per_user
        ]
        assert [o.metrics for o in columnar.per_user] == [
            o.metrics for o in scalar.per_user
        ]

    def test_requires_store(self):
        workload = build_workload(workload_spec("small", seed=11))
        with ExperimentPool(
            workload, user_ids=workload.top_users(3), max_workers=1
        ) as pool:
            with pytest.raises(ValueError, match="shard store"):
                pool.run_cell_columnar(SPEC, ExperimentConfig(seed=11))

    def test_rejects_unsupported_config(self, pool_world):
        from repro.sim.faults import FaultConfig

        config = ExperimentConfig(
            seed=11, faults=FaultConfig(p_disconnect=0.2)
        )
        with pytest.raises(ValueError, match="paper-default"):
            pool_world.run_cell_columnar(SPEC, config)


# -- batched multichannel kernels ----------------------------------------------


def _random_ladders(rng):
    """Per-channel billed-size rows shared by a group, plus profit stacks."""
    n_channels = rng.randrange(1, 4)
    n_items = rng.randrange(1, 9)
    sizes_rows = []
    for _ in range(n_channels):
        n_levels = rng.randrange(2, 6)
        # Deliberately include duplicate and zero billed sizes: ties must
        # resolve like the scalar kernel, zero-size choices must drop.
        row = [0] + [
            rng.choice([0, 100, 200, 200, 300, 500, 800])
            for _ in range(n_levels - 1)
        ]
        sizes_rows.append(row)
    profits_stack = []
    for row in sizes_rows:
        profits = rng.choice([np.round, lambda x: x])(
            np.asarray(
                [
                    [0.0] + [rng.uniform(-1, 5) for _ in range(len(row) - 1)]
                    for _ in range(n_items)
                ]
            )
        )
        profits_stack.append(np.asarray(profits, dtype=np.float64))
    return sizes_rows, profits_stack


class TestBatchedKernels:
    def test_merge_channel_rows_batched_matches_scalar(self):
        """Stacked merge == per-item merge, winner for winner.

        Rounded profit matrices force exact ties, exercising the
        keep-first (highest profit, lowest channel, lowest level) rule.
        """
        rng = random.Random(7)
        for _ in range(200):
            sizes_rows, profits_stack = _random_ladders(rng)
            merged_sizes, profits, channels, levels = (
                merge_channel_rows_batched(sizes_rows, profits_stack)
            )
            n_items = profits_stack[0].shape[0]
            for i in range(n_items):
                scalar_sizes, scalar_profits, scalar_backmap = (
                    merge_channel_rows(
                        sizes_rows,
                        [stack[i] for stack in profits_stack],
                    )
                )
                assert merged_sizes == scalar_sizes
                assert profits[i].tolist() == scalar_profits
                assert list(
                    zip(channels[i].tolist(), levels[i].tolist())
                ) == scalar_backmap

    def test_hull_levels_batched_matches_scalar(self):
        rng = random.Random(13)
        for _ in range(200):
            k = rng.randrange(1, 10)
            sizes = [0]
            for _ in range(k - 1):
                sizes.append(sizes[-1] + rng.randrange(1, 300))
            n_items = rng.randrange(1, 8)
            profits = np.zeros((n_items, k), dtype=np.float64)
            for i in range(n_items):
                for j in range(1, k):
                    profits[i, j] = rng.choice(
                        [rng.uniform(-1, 4), round(rng.uniform(0, 4), 1)]
                    )
            hull_indices, hull_lengths = hull_levels_batched(sizes, profits)
            for i in range(n_items):
                expected = hull_levels(sizes, profits[i].tolist())
                got = hull_indices[i, : hull_lengths[i]].tolist()
                assert got == expected


# -- dirty-set merge cache across resume boundaries ----------------------------


def _starved_multichannel_engine(pairs, duration):
    """A backlogged, aging-free multichannel engine: cache-friendly.

    No aging means a queued item's merged rows depend only on the queue
    composition (the cache key); the starved budget keeps queues stable
    across rounds so the cache actually gets hits.
    """
    config = ExperimentConfig(
        seed=41, weekly_budget_mb=0.02, aging_tau_seconds=None
    )
    channels = ChannelSet(
        [
            builtin_channel("push"),
            builtin_channel("inapp"),
            builtin_channel("email"),
        ]
    )
    annotations = UtilityAnnotations(scores=oracle_scores(pairs))
    ladder = build_audio_ladder(config.presentation_spec)
    columns = build_cohort(pairs, annotations, ladder)
    engine = make_engine(
        columns, SPEC, config, duration, channels=channels
    )
    return columns, engine


class TestDirtyCacheResume:
    def test_cache_engages_on_stable_queues(self, store):
        _, pairs, duration = store
        _, engine = _starved_multichannel_engine(pairs, duration)
        assert engine.selection_path == "batched"
        engine.run()
        assert engine.merge_cache_hits > 0

    def test_single_stepping_invalidates_and_stays_bit_identical(self, store):
        """run(limit_rounds=1) to completion == one-shot run.

        Every ``run()`` call is a resume boundary: callers may have
        mutated round state in between, so the cache must drop all
        entries -- the stepper records zero hits -- while deliveries and
        channel codes stay bit-identical to the one-shot run.
        """
        _, pairs, duration = store
        columns, one_shot = _starved_multichannel_engine(pairs, duration)
        result = one_shot.run()
        assert one_shot.merge_cache_hits > 0

        _, stepper = _starved_multichannel_engine(pairs, duration)
        n_rounds = len(stepper.times)
        for _ in range(n_rounds):
            stepped = stepper.run(limit_rounds=1)
        assert stepper.merge_cache_hits == 0
        assert stepper.merge_cache_misses >= one_shot.merge_cache_misses

        assert stepped.deliveries == result.deliveries
        assert stepped.channel_names == result.channel_names
        for a, b in zip(stepped.channel_codes, result.channel_codes):
            assert a == b
        one = fold_outcomes(columns, result, digest_deliveries=True)
        step = fold_outcomes(columns, stepped, digest_deliveries=True)
        assert [o.delivery_digest for o in step] == [
            o.delivery_digest for o in one
        ]

    def test_interleaved_chunked_resume_matches(self, store):
        """Uneven resume chunks (1, 3, 7, ...) also fold bit-identically."""
        _, pairs, duration = store
        _, one_shot = _starved_multichannel_engine(pairs, duration)
        result = one_shot.run()

        _, chunked = _starved_multichannel_engine(pairs, duration)
        remaining = len(chunked.times)
        step = 1
        while remaining > 0:
            take = min(step, remaining)
            partial = chunked.run(limit_rounds=take)
            remaining -= take
            step = step * 2 + 1
        assert partial.deliveries == result.deliveries
