"""Tests for notification TTL expiry."""

import pytest

from repro.core.baselines import FifoScheduler
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork, NetworkState, TraceConnectivity

LADDER = build_audio_ladder()
ROUND = 3600.0


def make_scheduler(cls=RichNoteScheduler, ttl=None, theta=1_000_000.0, network=None,
                   **kwargs):
    device = MobileDevice(
        user_id=1,
        network=network or CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
    )
    return cls(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
        ttl_seconds=ttl,
        **kwargs,
    )


def make_item(item_id, created_at=0.0):
    return ContentItem(
        item_id=item_id,
        user_id=1,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=LADDER,
        content_utility=0.5,
    )


class TestTtl:
    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            make_scheduler(ttl=0.0)

    def test_fresh_items_unaffected(self):
        scheduler = make_scheduler(ttl=2 * ROUND)
        scheduler.enqueue(make_item(1, created_at=ROUND - 10))
        result = scheduler.run_round(ROUND, ROUND)
        assert len(result.deliveries) == 1
        assert result.dropped == []

    def test_stale_items_evicted_with_reason(self):
        offline = TraceConnectivity(
            [NetworkState.OFF] * 4 + [NetworkState.CELL]
        )
        scheduler = make_scheduler(ttl=2 * ROUND, network=offline)
        scheduler.enqueue(make_item(1, created_at=0.0))
        dropped = []
        delivered = []
        for round_index in range(1, 6):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            dropped.extend(result.dropped)
            delivered.extend(result.deliveries)
        assert delivered == []
        assert len(dropped) == 1
        assert dropped[0].reason == "ttl_expired"
        assert dropped[0].item.item_id == 1
        assert scheduler.total_dropped == 1
        assert scheduler.pending_items == 0

    def test_conservation_with_ttl(self):
        """enqueued = delivered + dropped + pending."""
        offline_then_on = TraceConnectivity(
            [NetworkState.OFF, NetworkState.OFF, NetworkState.CELL,
             NetworkState.CELL]
        )
        scheduler = make_scheduler(ttl=1.5 * ROUND, network=offline_then_on)
        delivered = 0
        dropped = 0
        for round_index in range(1, 5):
            now = round_index * ROUND
            scheduler.enqueue(make_item(round_index, created_at=now - 10))
            result = scheduler.run_round(now, ROUND)
            delivered += len(result.deliveries)
            dropped += len(result.dropped)
        assert delivered + dropped + scheduler.pending_items == 4
        assert dropped >= 1  # the round-1 item expired during the outage

    def test_baselines_support_ttl(self):
        scheduler = make_scheduler(cls=FifoScheduler, ttl=ROUND / 2, theta=0.0,
                                   fixed_level=3)
        scheduler.enqueue(make_item(1, created_at=0.0))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.dropped and result.dropped[0].reason == "ttl_expired"

    def test_boundary_age_exactly_ttl_is_kept(self):
        scheduler = make_scheduler(ttl=ROUND, theta=0.0)
        scheduler.enqueue(make_item(1, created_at=0.0))
        result = scheduler.run_round(ROUND, ROUND)  # age == ttl
        assert result.dropped == []
        assert result.queue_length_after == 1
