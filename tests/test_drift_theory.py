"""Theory-grounding tests: the Lyapunov drift inequality (Eq. 6's algebra).

The paper's derivation rests on the standard bound for ``[.]^+`` queue
updates: for ``Q' = max(0, Q - a + b)``,

    (Q'^2 - Q^2) / 2  <=  (a^2 + b^2) / 2 - Q (a - b).

These tests verify the implementation of that bound against realized
drifts -- first in the raw algebra over random queues, then through the
controller's scaled Lyapunov function, and finally on the live scheduler
(realized end-of-round drifts bounded given bounded arrivals, which is the
stability premise).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lyapunov import (
    LyapunovConfig,
    LyapunovController,
    LyapunovState,
    quadratic_drift_bound,
)

nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestQuadraticBound:
    @given(q=nonneg, served=nonneg, arrived=nonneg)
    @settings(max_examples=200, deadline=None)
    def test_bound_dominates_realized_drift(self, q, served, arrived):
        q_next = max(0.0, q - served + arrived)
        realized = 0.5 * (q_next**2 - q**2)
        bound = quadratic_drift_bound(q, served, arrived)
        # Tolerance must scale with q^2, not with the bound: `realized`
        # subtracts two squares of magnitude ~q^2, so its cancellation
        # error is ~eps * q^2 even when the bound itself is tiny (e.g.
        # q ~ 5e5, arrived ~ 1e-7 makes bound ~ 0.09 but the subtraction
        # noise ~ 3e-5).
        tolerance = 1e-9 * max(1.0, abs(bound), q * q, served * served)
        assert realized <= bound + tolerance

    def test_bound_tight_when_queue_stays_positive_one_sided(self):
        # With b = 0 and Q > a the bound's slack is exactly a*b = 0 term:
        # realized = a^2/2 - Qa; bound = a^2/2 - Qa.
        q, a = 10.0, 3.0
        realized = 0.5 * ((q - a) ** 2 - q**2)
        assert quadratic_drift_bound(q, a, 0.0) == pytest.approx(realized)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            quadratic_drift_bound(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            quadratic_drift_bound(0.0, -1.0, 0.0)


class TestControllerDrift:
    @given(
        q=st.floats(min_value=0, max_value=5e7),
        served=st.floats(min_value=0, max_value=5e6),
        arrived=st.floats(min_value=0, max_value=5e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_scaled_drift_respects_scaled_bound(self, q, served, arrived):
        """The controller's L uses scaled units; so must the bound."""
        config = LyapunovConfig()
        controller = LyapunovController(config)
        p = config.kappa_joules  # hold the energy term at its target
        before = LyapunovState(q_bytes=q, p_joules=p)
        after = LyapunovState(
            q_bytes=max(0.0, q - served + arrived), p_joules=p
        )
        realized = controller.drift(before, after)
        bound = quadratic_drift_bound(
            q * config.size_scale,
            served * config.size_scale,
            arrived * config.size_scale,
        )
        assert realized <= bound + 1e-9


class TestSchedulerDriftBounded:
    def test_realized_round_drifts_bounded_by_arrival_constant(self):
        """With bounded arrivals, per-round drift is bounded above.

        This is the premise of the stability argument: the scheduler's
        realized L(t+1) - L(t) never exceeds the beta derived from the
        max per-round arrival volume (in scaled units).
        """
        from repro.core.budgets import DataBudget, EnergyBudget
        from repro.core.content import ContentItem, ContentKind
        from repro.core.presentations import build_audio_ladder
        from repro.core.scheduler import RichNoteScheduler
        from repro.sim.battery import BatterySample, BatteryTrace
        from repro.sim.device import MobileDevice
        from repro.sim.network import CellularOnlyNetwork

        ladder = build_audio_ladder()
        config = LyapunovConfig()
        device = MobileDevice(
            user_id=1,
            network=CellularOnlyNetwork(),
            battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
        )
        scheduler = RichNoteScheduler(
            device=device,
            data_budget=DataBudget(theta_bytes=100_000.0),
            energy_budget=EnergyBudget(kappa_joules=config.kappa_joules),
        )
        rng = random.Random(2)
        max_arrivals_per_round = 4
        drifts = []
        previous_l = scheduler.lyapunov_value()
        for round_index in range(1, 60):
            now = round_index * 3600.0
            for offset in range(rng.randint(0, max_arrivals_per_round)):
                scheduler.enqueue(
                    ContentItem(
                        item_id=round_index * 10 + offset,
                        user_id=1,
                        kind=ContentKind.FRIEND_FEED,
                        created_at=now - 1.0,
                        ladder=ladder,
                        content_utility=rng.random(),
                    )
                )
            scheduler.run_round(now, 3600.0)
            current_l = scheduler.lyapunov_value()
            drifts.append(current_l - previous_l)
            previous_l = current_l
        # beta: worst case admits max_arrivals * s(i) bytes with nothing
        # served, plus the energy term's bounded wiggle.
        nu_max = max_arrivals_per_round * ladder.total_size() * config.size_scale
        e_max = config.kappa_joules * config.energy_scale
        beta = 0.5 * (nu_max**2 + e_max**2) + previous_l * 0  # scaled units
        # The drift can exceed beta only via the -Q(a-b) cross term when the
        # queue is large; stability keeps Q small, so check against beta
        # plus the small realized queue pressure.
        q_cap = max(scheduler.lyapunov_history) ** 0.5 * (2**0.5)
        assert max(drifts) <= beta + q_cap * nu_max + 1e-9
