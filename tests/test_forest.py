"""Tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


def noisy_data(n=400, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 5))
    logit = 4 * (x[:, 0] - 0.5) + 2 * (x[:, 1] - 0.5)
    p = 1 / (1 + np.exp(-logit))
    y = (rng.uniform(size=n) < p).astype(int)
    return x, y


class TestValidation:
    def test_needs_at_least_one_tree(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict([[1.0]])

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit([[1.0], [2.0]], [0])


class TestLearning:
    def test_beats_chance_on_noisy_data(self):
        x, y = noisy_data()
        forest = RandomForestClassifier(
            n_estimators=20, max_depth=6, random_state=0
        ).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.7

    def test_probabilities_valid(self):
        x, y = noisy_data()
        proba = (
            RandomForestClassifier(n_estimators=10, max_depth=4, random_state=0)
            .fit(x, y)
            .predict_proba(x)
        )
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_deterministic_under_seed(self):
        x, y = noisy_data()
        p1 = (
            RandomForestClassifier(n_estimators=5, random_state=3)
            .fit(x, y)
            .predict_proba(x)
        )
        p2 = (
            RandomForestClassifier(n_estimators=5, random_state=3)
            .fit(x, y)
            .predict_proba(x)
        )
        assert np.array_equal(p1, p2)

    def test_different_seeds_differ(self):
        x, y = noisy_data()
        p1 = (
            RandomForestClassifier(n_estimators=5, random_state=3)
            .fit(x, y)
            .predict_proba(x)
        )
        p2 = (
            RandomForestClassifier(n_estimators=5, random_state=4)
            .fit(x, y)
            .predict_proba(x)
        )
        assert not np.array_equal(p1, p2)

    def test_ensemble_smoother_than_single_tree(self):
        """Forest probabilities take more distinct values than one tree's."""
        x, y = noisy_data()
        single = RandomForestClassifier(n_estimators=1, max_depth=3, random_state=0)
        many = RandomForestClassifier(n_estimators=30, max_depth=3, random_state=0)
        p_single = single.fit(x, y).predict_proba(x)[:, 1]
        p_many = many.fit(x, y).predict_proba(x)[:, 1]
        assert len(np.unique(p_many)) > len(np.unique(p_single))


class TestOob:
    def test_oob_score_reasonable(self):
        x, y = noisy_data(n=500)
        forest = RandomForestClassifier(
            n_estimators=25, max_depth=6, random_state=0
        ).fit(x, y)
        assert 0.6 < forest.oob_score() <= 1.0

    def test_oob_requires_bootstrap(self):
        x, y = noisy_data(n=100)
        forest = RandomForestClassifier(
            n_estimators=3, bootstrap=False, random_state=0
        ).fit(x, y)
        with pytest.raises(RuntimeError):
            forest.oob_score()


class TestFeatureImportances:
    def test_informative_features_rank_highest(self):
        x, y = noisy_data(n=600)
        forest = RandomForestClassifier(
            n_estimators=20, max_depth=5, random_state=0
        ).fit(x, y)
        importances = forest.feature_importances()
        assert importances.shape == (5,)
        assert importances.sum() == pytest.approx(1.0)
        # Feature 0 carries twice the signal of feature 1; 2-4 are noise.
        assert importances[0] == max(importances)
        assert importances[0] > importances[2]
        assert importances[0] > importances[3]
