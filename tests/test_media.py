"""Tests for video/image presentation generators and the ladder registry."""

import pytest

from repro.core.content import ContentKind
from repro.core.media import (
    ImagePresentationSpec,
    LadderRegistry,
    VideoPresentationSpec,
    build_image_ladder,
    build_video_ladder,
    default_registry,
)
from repro.core.presentations import METADATA_SIZE_BYTES


class TestVideoLadder:
    def test_default_ladder_valid(self):
        ladder = build_video_ladder()
        assert ladder.max_level >= 3
        assert ladder.size(1) == METADATA_SIZE_BYTES
        assert ladder.utility(ladder.max_level) == pytest.approx(1.0)

    def test_levels_capped(self):
        spec = VideoPresentationSpec(max_levels=3)
        ladder = build_video_ladder(spec)
        # level 0 + metadata + at most 3 media rungs
        assert ladder.max_level <= 4

    def test_single_level_keeps_richest(self):
        spec = VideoPresentationSpec(max_levels=1)
        ladder = build_video_ladder(spec)
        assert ladder.max_level == 2
        assert ladder.utility(2) == pytest.approx(1.0)

    def test_gradients_diminish(self):
        """Skyline output must be gradient-monotone for the greedy."""
        ladder = build_video_ladder()
        gradients = [
            (ladder.utility(level + 1) - ladder.utility(level))
            / (ladder.size(level + 1) - ladder.size(level))
            for level in range(2, ladder.max_level)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(gradients, gradients[1:]))

    def test_higher_resolution_larger_sizes(self):
        spec = VideoPresentationSpec(preview_durations=(10.0,), heights=(144, 720))
        variants = spec.variants()
        small = next(v for v in variants if v.height_px == 144)
        big = next(v for v in variants if v.height_px == 720)
        assert big.size_bytes() > small.size_bytes()
        assert spec.utility(big) > spec.utility(small)

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoPresentationSpec(preview_durations=())
        with pytest.raises(ValueError):
            VideoPresentationSpec(heights=(999,))
        with pytest.raises(ValueError):
            VideoPresentationSpec(max_levels=0)


class TestImageLadder:
    def test_default_ladder_valid(self):
        ladder = build_image_ladder()
        assert ladder.max_level == 6  # 0 + metadata + 5 thumbnail sizes
        assert ladder.utility(6) == pytest.approx(1.0)

    def test_sizes_quadratic_in_edge(self):
        spec = ImagePresentationSpec(edge_px=(64, 128), bytes_per_pixel=0.25)
        assert spec.thumbnail_size_bytes(128) == 4 * spec.thumbnail_size_bytes(64)

    def test_diminishing_returns_per_byte(self):
        ladder = build_image_ladder()
        gradients = [
            (ladder.utility(level + 1) - ladder.utility(level))
            / (ladder.size(level + 1) - ladder.size(level))
            for level in range(2, ladder.max_level)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(gradients, gradients[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ImagePresentationSpec(edge_px=())
        with pytest.raises(ValueError):
            ImagePresentationSpec(edge_px=(128, 64))
        with pytest.raises(ValueError):
            ImagePresentationSpec(bytes_per_pixel=0)


class TestRegistry:
    def test_default_registry_covers_all_kinds(self):
        registry = default_registry()
        assert registry.registered_kinds() == frozenset(ContentKind)
        for kind in ContentKind:
            assert registry.ladder_for(kind).max_level == 6

    def test_registry_caches_builds(self):
        registry = default_registry()
        assert registry.ladder_for(ContentKind.FRIEND_FEED) is registry.ladder_for(
            ContentKind.FRIEND_FEED
        )

    def test_reregister_invalidates_cache(self):
        registry = default_registry()
        first = registry.ladder_for(ContentKind.ALBUM_RELEASE)
        registry.register(ContentKind.ALBUM_RELEASE, build_image_ladder)
        second = registry.ladder_for(ContentKind.ALBUM_RELEASE)
        assert second is not first
        assert "thumbnail" in second[2].description

    def test_unregistered_kind_raises(self):
        registry = LadderRegistry()
        with pytest.raises(KeyError):
            registry.ladder_for(ContentKind.FRIEND_FEED)
