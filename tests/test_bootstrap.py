"""Tests for respondent heterogeneity and bootstrap confidence."""

import pytest

from repro.survey.bootstrap import (
    bootstrap_duration_fit,
    synthesize_heterogeneous_duration_survey,
)
from repro.survey.synthesis import synthesize_duration_survey

PROBES = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 39.0]


class TestHeterogeneousSurvey:
    def test_cdf_still_monotone(self):
        survey = synthesize_heterogeneous_duration_survey(n_respondents=200)
        cdf = survey.utilities_at(PROBES)
        assert cdf == sorted(cdf)

    def test_zero_spread_matches_population_curve(self):
        """taste_spread=0 degenerates to the iid sampler's distribution."""
        hetero = synthesize_heterogeneous_duration_survey(
            n_respondents=4000, taste_spread=0.0, seed=5
        )
        plain = synthesize_duration_survey(n_respondents=4000, seed=5)
        for probe in (10.0, 20.0, 30.0):
            assert hetero.empirical_cdf(probe) == pytest.approx(
                plain.empirical_cdf(probe), abs=0.03
            )

    def test_spread_overdisperses_stop_points(self):
        """More taste spread pushes both tails outward.

        The upper tail is censored at the probe horizon, so over-dispersion
        shows up as a lower 10th percentile AND a larger censored fraction.
        """
        tight = synthesize_heterogeneous_duration_survey(
            n_respondents=3000, taste_spread=0.0, seed=6
        )
        wide = synthesize_heterogeneous_duration_survey(
            n_respondents=3000, taste_spread=0.8, seed=6
        )

        def q10(survey):
            return sorted(survey.stop_seconds)[300]

        def censored(survey):
            return sum(1 for s in survey.stop_seconds if s > 40.0)

        assert q10(wide) < q10(tight)
        assert censored(wide) > censored(tight)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_heterogeneous_duration_survey(n_respondents=0)
        with pytest.raises(ValueError):
            synthesize_heterogeneous_duration_survey(taste_spread=-1.0)
        with pytest.raises(ValueError):
            synthesize_heterogeneous_duration_survey(b=0.0)


class TestBootstrapFit:
    @pytest.fixture(scope="class")
    def small_panel_fit(self):
        survey = synthesize_duration_survey(n_respondents=80, seed=11)
        return bootstrap_duration_fit(survey, PROBES, n_bootstrap=120, seed=11)

    def test_interval_brackets_point_estimate(self, small_panel_fit):
        fit = small_panel_fit
        assert fit.a_interval[0] <= fit.a_point <= fit.a_interval[1]
        assert fit.b_interval[0] <= fit.b_point <= fit.b_interval[1]

    def test_interval_contains_population_truth(self, small_panel_fit):
        assert small_panel_fit.contains_truth(-0.397, 0.352)

    def test_bigger_panel_tighter_interval(self):
        small = bootstrap_duration_fit(
            synthesize_duration_survey(n_respondents=40, seed=12),
            PROBES, n_bootstrap=120, seed=12,
        )
        large = bootstrap_duration_fit(
            synthesize_duration_survey(n_respondents=2000, seed=12),
            PROBES, n_bootstrap=120, seed=12,
        )
        assert large.b_width() < small.b_width()
        assert large.a_width() < small.a_width()

    def test_validation(self):
        survey = synthesize_duration_survey(n_respondents=40, seed=1)
        with pytest.raises(ValueError):
            bootstrap_duration_fit(survey, PROBES, n_bootstrap=5)
        with pytest.raises(ValueError):
            bootstrap_duration_fit(survey, PROBES, confidence=1.5)

    def test_deterministic_under_seed(self):
        survey = synthesize_duration_survey(n_respondents=60, seed=2)
        a = bootstrap_duration_fit(survey, PROBES, n_bootstrap=50, seed=3)
        b = bootstrap_duration_fit(survey, PROBES, n_bootstrap=50, seed=3)
        assert a == b
