"""Tests for synthetic survey generation (Section V-B)."""

import pytest

from repro.survey.fitting import fit_logarithmic
from repro.survey.pareto import pareto_frontier
from repro.survey.synthesis import (
    SURVEY_DURATIONS_S,
    SURVEY_SAMPLING_RATES_KHZ,
    DurationSurvey,
    ratings_to_candidates,
    sample_size_bytes,
    synthesize_duration_survey,
    synthesize_presentation_survey,
)


class TestPresentationSurvey:
    def test_full_grid_rated(self):
        ratings = synthesize_presentation_survey(seed=1)
        assert len(ratings) == len(SURVEY_SAMPLING_RATES_KHZ) * len(SURVEY_DURATIONS_S)
        assert all(0.0 <= r.mean_rating <= 5.0 for r in ratings)

    def test_sizes_grow_with_rate_and_duration(self):
        assert sample_size_bytes(16, 10) == 2 * sample_size_bytes(8, 10)
        assert sample_size_bytes(8, 20) == 2 * sample_size_bytes(8, 10)

    def test_higher_fidelity_rates_higher_on_average(self):
        ratings = synthesize_presentation_survey(n_respondents=200, seed=2)
        def mean_for(rate):
            rs = [r.mean_rating for r in ratings if r.sampling_rate_khz == rate]
            return sum(rs) / len(rs)
        assert mean_for(44) > mean_for(8)

    def test_skyline_prunes_grid_to_few_useful(self):
        """The paper's 20 presentations reduced to ~6 useful ones."""
        ratings = synthesize_presentation_survey(n_respondents=100, seed=3)
        frontier = pareto_frontier(ratings_to_candidates(ratings))
        # The paper's survey kept 6 of 20; the exact count depends on the
        # rating surface, but pruning must remove a substantial fraction.
        assert 3 <= len(frontier) <= 14
        assert len(frontier) < len(ratings)
        # Frontier must be strictly monotone in both axes.
        utilities = [c.utility for c in frontier]
        assert utilities == sorted(utilities)

    def test_deterministic_under_seed(self):
        a = synthesize_presentation_survey(seed=4)
        b = synthesize_presentation_survey(seed=4)
        assert [r.mean_rating for r in a] == [r.mean_rating for r in b]

    def test_needs_respondents(self):
        with pytest.raises(ValueError):
            synthesize_presentation_survey(n_respondents=0)


class TestDurationSurvey:
    def test_cdf_monotone(self):
        survey = synthesize_duration_survey(n_respondents=80, seed=5)
        cdf = survey.utilities_at([5, 10, 20, 30, 40])
        assert cdf == sorted(cdf)
        assert 0.0 <= cdf[0] <= cdf[-1] <= 1.0

    def test_empty_survey_rejected(self):
        with pytest.raises(ValueError):
            DurationSurvey([]).empirical_cdf(10.0)

    def test_regression_recovers_paper_constants(self):
        """The full pipeline: sample stops -> CDF -> log fit near Eq. 8."""
        survey = synthesize_duration_survey(n_respondents=4000, seed=6)
        durations = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0]
        fit = fit_logarithmic(durations, survey.utilities_at(durations))
        a, b = fit.params
        assert a == pytest.approx(-0.397, abs=0.06)
        assert b == pytest.approx(0.352, abs=0.03)
        assert fit.r_squared > 0.98

    def test_censoring_excludes_long_stops(self):
        survey = synthesize_duration_survey(n_respondents=2000, seed=7)
        # ~9% of the population wants more than 40 s (Eq. 8 at d=40 is 0.91).
        assert survey.empirical_cdf(40.0) == pytest.approx(0.91, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_duration_survey(n_respondents=0)
        with pytest.raises(ValueError):
            synthesize_duration_survey(b=0.0)
