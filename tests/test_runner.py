"""Tests for the trace-driven experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec, NetworkMode
from repro.experiments.runner import (
    UtilityAnnotations,
    run_experiment,
    run_user,
    sweep_budgets,
)
from repro.experiments.workloads import eval_workload


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=1)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(weekly_budget_mb=10.0, seed=1)


class TestUtilityAnnotations:
    def test_scores_every_record(self, workload, annotations):
        assert set(annotations.scores) == {
            r.notification_id for r in workload.records
        }
        assert all(0.0 <= s <= 1.0 for s in annotations.scores.values())

    def test_scores_correlate_with_clicks(self, workload, annotations):
        clicked = [
            annotations.scores[r.notification_id]
            for r in workload.records
            if r.clicked
        ]
        unclicked = [
            annotations.scores[r.notification_id]
            for r in workload.records
            if r.hovered and not r.clicked
        ]
        assert sum(clicked) / len(clicked) > sum(unclicked) / len(unclicked)

    def test_oracle_mode(self, workload):
        annotations = UtilityAnnotations.train(workload, oracle=True)
        for record in workload.records[:200]:
            expected = 0.9 if record.clicked else 0.1
            assert annotations.scores[record.notification_id] == expected

    def test_cross_validation_optional(self, workload):
        annotations = UtilityAnnotations.train(
            workload, seed=1, max_training_samples=600, run_cross_validation=True
        )
        cv = annotations.cross_validation
        assert cv is not None
        assert 0.5 < cv.accuracy <= 1.0
        assert len(cv.fold_accuracy) == 5


class TestRunUser:
    def test_single_user_replay(self, workload, annotations, config):
        user_id = workload.top_users(1)[0]
        records = workload.records_for_user(user_id)
        duration = workload.config.duration_hours * 3600.0
        outcome = run_user(
            user_id, records, MethodSpec(Method.RICHNOTE), config, annotations,
            duration,
        )
        metrics = outcome.metrics
        assert metrics.total_notifications == len(records)
        assert 0.0 < metrics.delivery_ratio <= 1.0
        assert metrics.delivered_bytes > 0
        assert outcome.max_queue_length >= outcome.final_queue_length

    def test_deliveries_never_exceed_weekly_budget(self, workload, annotations):
        config = ExperimentConfig(weekly_budget_mb=1.0, seed=1)
        user_id = workload.top_users(1)[0]
        records = workload.records_for_user(user_id)
        duration = workload.config.duration_hours * 3600.0
        outcome = run_user(
            user_id, records, MethodSpec(Method.RICHNOTE), config, annotations,
            duration,
        )
        weeks = duration / (7 * 86400.0)
        allowance = config.weekly_budget_mb * 1e6 * weeks + config.theta_bytes_per_round
        assert outcome.metrics.delivered_bytes <= allowance


class TestRunExperiment:
    def test_all_methods_produce_results(self, workload, annotations, config):
        users = workload.top_users(5)
        for spec in (
            MethodSpec(Method.RICHNOTE),
            MethodSpec(Method.FIFO, 3),
            MethodSpec(Method.UTIL, 3),
        ):
            result = run_experiment(workload, spec, config, annotations, users)
            assert result.aggregate.users == 5
            assert result.aggregate.delivery_ratio > 0

    def test_richnote_delivers_more_than_fixed_baselines(
        self, workload, annotations
    ):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=1)
        users = workload.top_users(5)
        richnote = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        fifo = run_experiment(
            workload, MethodSpec(Method.FIFO, 3), config, annotations, users
        )
        assert (
            richnote.aggregate.delivery_ratio > fifo.aggregate.delivery_ratio
        )
        assert (
            richnote.aggregate.mean_queuing_delay_s
            < fifo.aggregate.mean_queuing_delay_s
        )

    def test_markov_mode_runs(self, workload, annotations):
        config = ExperimentConfig(
            weekly_budget_mb=10.0, network_mode=NetworkMode.MARKOV, seed=1
        )
        users = workload.top_users(3)
        result = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        assert result.aggregate.delivery_ratio > 0


class TestSweep:
    def test_grid_covers_all_cells(self, workload, annotations):
        specs = [MethodSpec(Method.RICHNOTE), MethodSpec(Method.UTIL, 2)]
        budgets = (2.0, 20.0)
        users = workload.top_users(3)
        grid = sweep_budgets(
            workload, specs, budgets,
            ExperimentConfig(seed=1), annotations, users,
        )
        assert set(grid) == {
            ("RichNote", 2.0),
            ("RichNote", 20.0),
            ("UTIL-L2", 2.0),
            ("UTIL-L2", 20.0),
        }

    def test_more_budget_never_hurts_baseline_delivery(self, workload, annotations):
        specs = [MethodSpec(Method.UTIL, 3)]
        users = workload.top_users(3)
        grid = sweep_budgets(
            workload, specs, (1.0, 50.0), ExperimentConfig(seed=1),
            annotations, users,
        )
        assert (
            grid[("UTIL-L3", 50.0)].aggregate.delivery_ratio
            >= grid[("UTIL-L3", 1.0)].aggregate.delivery_ratio
        )
