"""Tests for k-fold cross validation."""

import numpy as np
import pytest

from repro.ml.crossval import (
    cross_validate,
    kfold_indices,
    stratified_kfold_indices,
)


class TestKfold:
    def test_folds_partition_the_data(self):
        seen = []
        for train, test in kfold_indices(23, n_folds=5, random_state=0):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 23
            seen.extend(test)
        assert sorted(seen) == list(range(23))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in kfold_indices(23, 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, n_folds=1))
        with pytest.raises(ValueError):
            list(kfold_indices(3, n_folds=5))

    def test_shuffle_deterministic_by_seed(self):
        a = [tuple(test) for _, test in kfold_indices(20, 4, random_state=1)]
        b = [tuple(test) for _, test in kfold_indices(20, 4, random_state=1)]
        assert a == b


class TestStratified:
    def test_preserves_class_balance(self):
        labels = np.array([0] * 40 + [1] * 10)
        for _, test in stratified_kfold_indices(labels, n_folds=5, random_state=0):
            test_labels = labels[test]
            assert (test_labels == 1).sum() == 2
            assert (test_labels == 0).sum() == 8

    def test_rare_class_smaller_than_folds_rejected(self):
        labels = np.array([0] * 20 + [1] * 3)
        with pytest.raises(ValueError):
            list(stratified_kfold_indices(labels, n_folds=5))


class _MajorityModel:
    """Predicts the training majority class."""

    def fit(self, x, y):
        self._label = int(round(float(np.mean(y))))
        return self

    def predict(self, x):
        return np.full(len(x), self._label, dtype=int)


class _PerfectModel:
    """Cheats: predicts from the first feature (which equals the label)."""

    def fit(self, x, y):
        return self

    def predict(self, x):
        return (np.asarray(x)[:, 0] > 0.5).astype(int)


class TestCrossValidate:
    def test_perfect_model_scores_one(self):
        y = np.array([0, 1] * 20)
        x = y.reshape(-1, 1).astype(float)
        result = cross_validate(_PerfectModel, x, y, n_folds=5, random_state=0)
        assert result.accuracy == 1.0
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_majority_model_scores_base_rate(self):
        y = np.array([0] * 30 + [1] * 10)
        x = np.zeros((40, 1))
        result = cross_validate(
            _MajorityModel, x, y, n_folds=5, stratified=True, random_state=0
        )
        assert result.accuracy == pytest.approx(0.75)
        assert result.recall == 0.0

    def test_fold_count_respected(self):
        y = np.array([0, 1] * 15)
        x = y.reshape(-1, 1).astype(float)
        result = cross_validate(_PerfectModel, x, y, n_folds=3)
        assert len(result.fold_accuracy) == 3

    def test_summary_format(self):
        y = np.array([0, 1] * 15)
        x = y.reshape(-1, 1).astype(float)
        summary = cross_validate(_PerfectModel, x, y).summary()
        assert "accuracy=1.000" in summary

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            cross_validate(_PerfectModel, np.zeros((5, 1)), np.zeros(4))
