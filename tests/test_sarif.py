"""Tests for the SARIF 2.1.0 emitter.

The structural assertions always run.  When ``jsonschema`` is available
in the environment (it is not a declared dependency), the log is
additionally validated against a vendored subset of the OASIS
sarif-schema-2.1.0.json -- the subset constrains every property richlint
emits exactly as the full standard does.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, render_sarif
from repro.analysis.cli import main as richlint_main
from repro.analysis.engine import default_rules, write_baseline
from repro.analysis.sarif import FINGERPRINT_KEY, SARIF_SCHEMA

FIXTURES = Path(__file__).parent / "fixtures" / "richlint"
SUBSET_SCHEMA = Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json"


@pytest.fixture
def mixed_report(tmp_path):
    """A report with active, suppressed, baselined and parse-error results."""
    (tmp_path / "dirty.py").write_text(
        "import random\nx = random.random()\n"
    )
    (tmp_path / "hushed.py").write_text(
        "import random\n"
        "y = random.random()  # richlint: ignore[RL201] -- demo entropy\n"
    )
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "old.py").write_text("import random\nz = random.random()\n")
    first = analyze_paths([tmp_path / "old.py"], root=tmp_path)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, first.findings, first.modules_by_path)
    return analyze_paths([tmp_path], root=tmp_path, baseline=baseline)


class TestRenderSarif:
    def test_log_envelope(self, mixed_report):
        log = render_sarif(mixed_report)
        assert log["version"] == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "richlint"

    def test_every_rule_is_described_including_parse_errors(self, mixed_report):
        (run,) = render_sarif(mixed_report)["runs"]
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert ids == [rule.code for rule in default_rules()] + ["RL901"]
        assert len(set(ids)) == len(ids)
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["shortDescription"]["text"]

    def test_results_cover_all_four_result_kinds(self, mixed_report):
        (run,) = render_sarif(mixed_report)["runs"]
        by_rule = {}
        for result in run["results"]:
            by_rule.setdefault(result["ruleId"], []).append(result)

        parse = by_rule["RL901"][0]
        assert parse["level"] == "error"
        assert "partialFingerprints" not in parse

        kinds = {"active": None, "suppressed": None, "baselined": None}
        for result in by_rule["RL201"]:
            if result.get("suppressions"):
                kinds["suppressed"] = result
            elif result.get("baselineState"):
                kinds["baselined"] = result
            else:
                kinds["active"] = result
        assert all(kinds.values()), f"missing result kinds in {by_rule}"

        active = kinds["active"]
        assert active["level"] == "error"
        assert active["partialFingerprints"][FINGERPRINT_KEY]
        location = active["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "dirty.py"
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1

        suppressed = kinds["suppressed"]
        assert suppressed["level"] == "note"
        (suppression,) = suppressed["suppressions"]
        assert suppression["kind"] == "inSource"
        assert "demo entropy" in suppression["justification"]

        baselined = kinds["baselined"]
        assert baselined["level"] == "note"
        assert baselined["baselineState"] == "unchanged"

    def test_rule_index_points_at_the_matching_descriptor(self, mixed_report):
        (run,) = render_sarif(mixed_report)["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_validates_against_sarif_schema_subset(self, mixed_report):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SUBSET_SCHEMA.read_text())
        jsonschema.validate(render_sarif(mixed_report), schema)

    def test_subset_schema_rejects_malformed_logs(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SUBSET_SCHEMA.read_text())
        for broken in (
            {"version": "2.0.0", "runs": []},
            {"version": "2.1.0"},
            {"version": "2.1.0", "runs": [{}]},
            {
                "version": "2.1.0",
                "runs": [
                    {
                        "tool": {"driver": {"name": "x"}},
                        "results": [{"message": {"text": "m"}, "level": "fatal"}],
                    }
                ],
            },
        ):
            with pytest.raises(jsonschema.ValidationError):
                jsonschema.validate(broken, schema)


class TestCliIntegration:
    def test_format_sarif_prints_a_log(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        code = richlint_main(
            [str(dirty), "--no-baseline", "--format", "sarif"]
        )
        assert code == 1  # findings still gate the exit code
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "RL201"

    def test_sarif_out_writes_alongside_text_output(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        out = tmp_path / "richlint.sarif"
        code = richlint_main(
            [str(clean), "--no-baseline", "--sarif-out", str(out)]
        )
        assert code == 0
        assert "richlint:" in capsys.readouterr().out
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"] == []

    def test_stats_reports_baseline_size(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert (
            richlint_main(
                [str(dirty), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            richlint_main(
                [str(dirty), "--baseline", str(baseline), "--stats"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "richlint-stats:" in out
        assert "entries=1" in out
        assert "matched_this_run=1" in out
