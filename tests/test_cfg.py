"""Tests for the per-function control-flow graphs behind the R7 rules.

The CFG is deliberately approximate (documented in ``cfg.py``): it only
needs *may* information -- which statements might execute, which
definitions might reach a use.  These tests pin the approximations that
the async-safety rules depend on: dead code is unreachable, exception
edges are conservative, and reaching definitions track rebinds.
"""

from __future__ import annotations

import ast

import pytest

from repro.analysis.cfg import build_cfg, function_nodes


def cfg_for(source: str):
    tree = ast.parse(source)
    funcs = list(function_nodes(tree))
    assert len(funcs) == 1, "helper expects exactly one top-level function"
    return funcs[0], build_cfg(funcs[0])


def find_call(func: ast.AST, name: str) -> ast.Call:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = ast.unparse(node.func)
            if target.endswith(name):
                return node
    raise AssertionError(f"no call to {name} in function")


class TestReachability:
    def test_statement_after_return_is_dead(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    return 1\n"
            "    boom()\n"
        )
        assert not cfg.is_reachable(find_call(func, "boom"))

    def test_statement_after_raise_is_dead(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    raise ValueError('no')\n"
            "    boom()\n"
        )
        assert not cfg.is_reachable(find_call(func, "boom"))

    def test_code_after_breakless_while_true_is_dead(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    while True:\n"
            "        spin()\n"
            "    boom()\n"
        )
        assert cfg.is_reachable(find_call(func, "spin"))
        assert not cfg.is_reachable(find_call(func, "boom"))

    def test_break_restores_the_loop_exit(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    while True:\n"
            "        if done():\n"
            "            break\n"
            "    after()\n"
        )
        assert cfg.is_reachable(find_call(func, "after"))

    def test_both_branches_reachable_then_rejoin(self):
        func, cfg = cfg_for(
            "def f(flag):\n"
            "    if flag:\n"
            "        left()\n"
            "    else:\n"
            "        right()\n"
            "    after()\n"
        )
        for name in ("left", "right", "after"):
            assert cfg.is_reachable(find_call(func, name))

    def test_while_else_runs_on_normal_exit(self):
        func, cfg = cfg_for(
            "def f(n):\n"
            "    while n > 0:\n"
            "        n -= 1\n"
            "    else:\n"
            "        wrap_up()\n"
            "    after()\n"
        )
        assert cfg.is_reachable(find_call(func, "wrap_up"))
        assert cfg.is_reachable(find_call(func, "after"))


class TestTryFinally:
    def test_handler_and_finally_are_reachable(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        on_error()\n"
            "    finally:\n"
            "        cleanup()\n"
            "    after()\n"
        )
        for name in ("risky", "on_error", "cleanup", "after"):
            assert cfg.is_reachable(find_call(func, name))

    def test_every_protected_statement_may_reach_every_handler(self):
        # The approximation: each body block edges to each handler entry,
        # because any statement may raise.
        func, cfg = cfg_for(
            "def f():\n"
            "    try:\n"
            "        first()\n"
            "        second()\n"
            "    except KeyError:\n"
            "        key_path()\n"
            "    except ValueError:\n"
            "        value_path()\n"
        )
        for name in ("first", "second", "key_path", "value_path"):
            assert cfg.is_reachable(find_call(func, name))

    def test_try_else_only_after_body(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except OSError:\n"
            "        return None\n"
            "    else:\n"
            "        celebrate()\n"
        )
        assert cfg.is_reachable(find_call(func, "celebrate"))


class TestNestedAndAsync:
    def test_nested_defs_get_their_own_cfgs(self):
        tree = ast.parse(
            "async def outer():\n"
            "    async def inner():\n"
            "        await thing()\n"
            "    return inner\n"
        )
        funcs = list(function_nodes(tree))
        names = sorted(f.name for f in funcs)
        assert names == ["inner", "outer"]
        outer = next(f for f in funcs if f.name == "outer")
        inner = next(f for f in funcs if f.name == "inner")
        outer_cfg = build_cfg(outer)
        # The inner body belongs to the inner CFG, not the outer one.
        call = find_call(inner, "thing")
        assert cfg_contains(build_cfg(inner), call)
        assert not cfg_contains(outer_cfg, call)

    def test_async_for_and_async_with_flow_through(self):
        func, cfg = cfg_for(
            "async def f(source, lock):\n"
            "    async with lock:\n"
            "        setup()\n"
            "    async for item in source:\n"
            "        handle(item)\n"
            "    after()\n"
        )
        for name in ("setup", "handle", "after"):
            assert cfg.is_reachable(find_call(func, name))


def cfg_contains(cfg, node: ast.AST) -> bool:
    return cfg.block_of(node) is not None


class TestReachingDefinitions:
    def test_rebind_shadows_earlier_definition(self):
        func, cfg = cfg_for(
            "def f():\n"
            "    x = 1\n"
            "    x = 2\n"
            "    use(x)\n"
        )
        use = find_call(func, "use").args[0]
        defs = cfg.definitions_reaching(use)
        assert {d.line for d in defs} == {3}

    def test_branches_merge_both_definitions(self):
        func, cfg = cfg_for(
            "def f(flag):\n"
            "    if flag:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    use(x)\n"
        )
        use = find_call(func, "use").args[0]
        assert {d.line for d in cfg.definitions_reaching(use)} == {3, 5}

    def test_parameters_reach_uses(self):
        func, cfg = cfg_for(
            "def f(lock):\n"
            "    use(lock)\n"
        )
        use = find_call(func, "use").args[0]
        defs = cfg.definitions_reaching(use)
        assert len(defs) == 1
        (param_def,) = defs
        assert param_def.line == func.lineno

    def test_loop_carries_definitions_around_the_back_edge(self):
        func, cfg = cfg_for(
            "def f(n):\n"
            "    x = 0\n"
            "    while n > 0:\n"
            "        use(x)\n"
            "        x = x + 1\n"
            "        n -= 1\n"
            "    return x\n"
        )
        use = find_call(func, "use").args[0]
        # Both the initial binding and the in-loop rebind may reach the use.
        assert {d.line for d in cfg.definitions_reaching(use)} == {2, 5}


class TestBuilderTotality:
    """build_cfg must not choke on any statement shape in the tree."""

    @pytest.mark.parametrize(
        "source",
        [
            "def f(x):\n    match x:\n        case 1:\n            one()\n"
            "        case _:\n            rest()\n",
            "def f():\n    for i in range(3):\n        step(i)\n"
            "    else:\n        done()\n",
            "def f(it):\n    with open('x') as fh, it() as t:\n"
            "        read(fh, t)\n",
            "def f():\n    try:\n        risky()\n    except* ValueError:\n"
            "        grouped()\n",
        ],
    )
    def test_builds_without_error(self, source):
        func, cfg = cfg_for(source)
        assert cfg.reachable()
