"""Tests for the live notification service (ingest -> schedule -> deliver).

Unit layers first (clock, queues, rate limiter, ladder, timers, guarded
sinks, loop hooks), then the end-to-end chaos gate: a flash crowd against
bounded queues must keep the conservation ledger exact, never exceed a
queue bound, answer overloads explicitly, and walk the degradation
ladder up *and* back down.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel
from repro.pubsub.broker import BreakerState, CircuitBreakerConfig
from repro.runtime import registry
from repro.runtime.loop import RoundLoop
from repro.runtime.types import Delivery
from repro.service import (
    Admission,
    BoundedUserQueue,
    DegradationConfig,
    DegradationController,
    GuardedSink,
    IngestFrontier,
    NotificationService,
    PressureLevel,
    QueuedEvent,
    RateLimitConfig,
    RoundTimers,
    ServiceConfig,
    SimulatedClock,
    SinkPolicy,
    TieredRateLimiter,
    TokenBucket,
)
from repro.service.harness import DemoConfig, run_demo
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.energy import TransferEnergyModel
from repro.sim.network import NetworkState, TraceConnectivity

LADDER = build_audio_ladder()


def item(item_id, user_id=1, created_at=0.0, utility=0.5):
    return ContentItem(
        item_id=item_id,
        user_id=user_id,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=LADDER,
        content_utility=utility,
    )


def delivery(item_id=0, user_id=1):
    return Delivery(
        time=0.0,
        user_id=user_id,
        item=item(item_id, user_id),
        level=1,
        size_bytes=1_000,
        energy_joules=1.0,
        utility=0.5,
    )


def event(item_id, user_id=1, at=0.0):
    return QueuedEvent(item=item(item_id, user_id), ingested_at=at)


def make_loop(user_id=1):
    """A live RoundLoop on always-on WiFi with generous budgets."""
    device = MobileDevice(
        user_id=user_id,
        network=TraceConnectivity([NetworkState.WIFI]),
        battery=BatteryTrace([BatterySample(time=0.0, level=0.9, charging=False)]),
        energy_model=TransferEnergyModel(),
    )
    return RoundLoop(
        device,
        DataBudget(theta_bytes=5_000_000.0),
        EnergyBudget(kappa_joules=10_000.0),
        CombinedUtilityModel(),
        policy=registry.create("richnote"),
    )


def drive(clock, awaitable):
    return asyncio.run(clock.drive(awaitable))


class TestSimulatedClock:
    def test_sleepers_wake_in_deadline_order(self):
        clock = SimulatedClock()
        order = []

        async def sleeper(label, seconds):
            await clock.sleep(seconds)
            order.append(label)

        async def scenario():
            tasks = [
                asyncio.ensure_future(sleeper("late", 3.0)),
                asyncio.ensure_future(sleeper("early", 1.0)),
                asyncio.ensure_future(sleeper("mid", 2.0)),
            ]
            await clock.advance(5.0)
            await asyncio.gather(*tasks)

        asyncio.run(scenario())
        assert order == ["early", "mid", "late"]
        assert clock.now() == 5.0

    def test_nonpositive_sleep_yields_without_parking(self):
        clock = SimulatedClock()

        async def scenario():
            await clock.sleep(0.0)
            await clock.sleep(-1.0)
            return clock.pending_sleepers

        assert asyncio.run(scenario()) == 0

    def test_advance_backwards_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError, match="backwards"):
            asyncio.run(clock.advance(-0.1))

    def test_drive_runs_chained_sleeps_to_completion(self):
        clock = SimulatedClock()

        async def chained():
            for _ in range(10):
                await clock.sleep(7.0)
            return clock.now()

        assert drive(clock, chained()) == 70.0

    def test_drive_detects_a_genuine_deadlock(self):
        clock = SimulatedClock()

        async def stuck():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(RuntimeError, match="stalled"):
            asyncio.run(clock.drive(stuck(), max_idle_yields=50))


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, capacity=3.0, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_lazily_and_caps_at_capacity(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0, now=0.0)
        for _ in range(4):
            assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.5)  # 0.5s x 2/s = 1 token back
        assert bucket.available(1_000.0) == 4.0  # never above capacity

    def test_peek_consumes_nothing(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0, now=0.0)
        assert bucket.peek(0.0)
        assert bucket.peek(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.peek(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError, match="capacity"):
            TokenBucket(rate=1.0, capacity=0.5)


class TestTieredRateLimiter:
    def test_disabled_config_admits_everything(self):
        limiter = TieredRateLimiter(RateLimitConfig())
        assert not limiter.config.enabled
        for i in range(1_000):
            assert limiter.allow(0.0, i % 3, ContentKind.FRIEND_FEED).allowed

    def test_denial_names_the_tier(self):
        limiter = TieredRateLimiter(
            RateLimitConfig(per_user_rate=1.0, per_user_burst=2.0), now=0.0
        )
        assert limiter.allow(0.0, 1, ContentKind.FRIEND_FEED).allowed
        assert limiter.allow(0.0, 1, ContentKind.FRIEND_FEED).allowed
        denied = limiter.allow(0.0, 1, ContentKind.FRIEND_FEED)
        assert not denied.allowed
        assert denied.tier == "user"
        assert limiter.denials == {
            "global": 0,
            "user": 1,
            "topic": 0,
            "channel": 0,
        }
        # Another user has their own bucket.
        assert limiter.allow(0.0, 2, ContentKind.FRIEND_FEED).allowed

    def test_denied_admission_leaks_no_tokens_from_other_tiers(self):
        config = RateLimitConfig(
            global_rate=10.0,
            global_burst=5.0,
            per_user_rate=1.0,
            per_user_burst=1.0,
        )
        limiter = TieredRateLimiter(config, now=0.0)
        assert limiter.allow(0.0, 1, ContentKind.FRIEND_FEED).allowed
        # User 1's bucket is empty; the global bucket must not pay for
        # the denied attempts.
        for _ in range(3):
            assert limiter.allow(0.0, 1, ContentKind.FRIEND_FEED).tier == "user"
        # 5 - 1 consumed = 4 global tokens remain for other users.
        for user_id in (2, 3, 4, 5):
            assert limiter.allow(0.0, user_id, ContentKind.FRIEND_FEED).allowed
        assert limiter.allow(0.0, 6, ContentKind.FRIEND_FEED).tier == "global"

    def test_topic_tier_isolates_kinds(self):
        limiter = TieredRateLimiter(
            RateLimitConfig(per_topic_rate=1.0, per_topic_burst=1.0), now=0.0
        )
        assert limiter.allow(0.0, 1, ContentKind.ALBUM_RELEASE).allowed
        assert limiter.allow(0.0, 2, ContentKind.ALBUM_RELEASE).tier == "topic"
        assert limiter.allow(0.0, 3, ContentKind.FRIEND_FEED).allowed

    def test_rate_config_validation(self):
        with pytest.raises(ValueError, match="global_rate"):
            RateLimitConfig(global_rate=0.0)
        with pytest.raises(ValueError, match="per_user_burst"):
            RateLimitConfig(per_user_burst=0.0)


class TestBoundedQueues:
    def test_push_refuses_at_bound_without_dropping(self):
        queue = BoundedUserQueue(user_id=1, bound=2)
        assert queue.push(event(0))
        assert queue.push(event(1))
        assert not queue.push(event(2))
        assert len(queue) == 2
        assert queue.high_water == 2
        drained = queue.drain()
        assert [e.item.item_id for e in drained] == [0, 1]  # FIFO
        assert len(queue) == 0
        assert queue.high_water == 2  # survives the drain

    def test_frontier_tracks_window_peak_across_drains(self):
        frontier = IngestFrontier(queue_bound=4)
        frontier.register(1)
        frontier.register(2)
        for i in range(3):
            assert frontier.offer(event(i, user_id=1))
        frontier.drain(1)
        assert frontier.total_depth() == 0
        # The tick still sees the burst that came and went.
        assert frontier.take_window_peak() == 3
        assert frontier.take_window_peak() == 0  # window reset

    def test_occupancy_is_depth_over_aggregate_capacity(self):
        frontier = IngestFrontier(queue_bound=4)
        frontier.register(1)
        frontier.register(2)
        assert frontier.occupancy_of(4) == 0.5
        assert frontier.occupancy_of(9_999) == 1.0

    def test_bound_validation(self):
        with pytest.raises(ValueError, match="bound"):
            BoundedUserQueue(user_id=1, bound=0)
        with pytest.raises(ValueError, match="bound"):
            IngestFrontier(queue_bound=0)


class TestDegradationLadder:
    def test_escalates_immediately_and_recovers_one_rung_per_tick(self):
        controller = DegradationController(DegradationConfig())
        assert controller.update(0.0, occupancy=0.95) is PressureLevel.SHED
        # Pressure gone; recovery still walks down one rung at a time.
        assert controller.update(1.0, occupancy=0.0) is PressureLevel.DEFER
        assert controller.update(2.0, occupancy=0.0) is PressureLevel.REDUCE_RICH
        assert controller.update(3.0, occupancy=0.0) is PressureLevel.NORMAL
        assert controller.max_level is PressureLevel.SHED
        assert [level for _, level in controller.transitions] == [
            PressureLevel.SHED,
            PressureLevel.DEFER,
            PressureLevel.REDUCE_RICH,
            PressureLevel.NORMAL,
        ]

    def test_hysteresis_blocks_recovery_near_the_threshold(self):
        config = DegradationConfig(reduce_at=0.5, recover_margin=0.1)
        controller = DegradationController(config)
        controller.update(0.0, occupancy=0.6)
        assert controller.level is PressureLevel.REDUCE_RICH
        # Just under the entry threshold but inside the margin: hold.
        controller.update(1.0, occupancy=0.45)
        assert controller.level is PressureLevel.REDUCE_RICH
        controller.update(2.0, occupancy=0.39)
        assert controller.level is PressureLevel.NORMAL

    def test_open_breakers_add_pressure(self):
        controller = DegradationController(DegradationConfig(breaker_weight=0.5))
        level = controller.update(0.0, occupancy=0.3, breaker_open_fraction=1.0)
        assert controller.pressure == pytest.approx(0.8)
        assert level is PressureLevel.DEFER

    def test_level_cap_applies_from_reduce_rich_up(self):
        controller = DegradationController(DegradationConfig(rich_level_cap=1))
        assert controller.level_cap() is None
        controller.update(0.0, occupancy=0.6)
        assert controller.level_cap() == 1
        assert not controller.defers_ingest
        controller.update(1.0, occupancy=0.8)
        assert controller.defers_ingest
        assert not controller.sheds_ingest
        controller.update(2.0, occupancy=0.95)
        assert controller.sheds_ingest

    def test_config_validation(self):
        with pytest.raises(ValueError, match="reduce_at"):
            DegradationConfig(reduce_at=0.9, defer_at=0.5)
        with pytest.raises(ValueError, match="recover_margin"):
            DegradationConfig(recover_margin=0.6)


class TestRoundTimers:
    def test_stagger_is_deterministic_and_within_one_period(self):
        first = RoundTimers(60.0, seed=5)
        second = RoundTimers(60.0, seed=5)
        for user_id in range(10):
            a = first.register(user_id, now=0.0)
            b = second.register(user_id, now=0.0)
            assert a == b
            assert 0.0 < a <= 60.0
        assert RoundTimers(60.0, seed=6).register(0, 0.0) != first._heap[0][0]

    def test_each_user_fires_exactly_rounds_times(self):
        timers = RoundTimers(10.0, seed=1)
        for user_id in range(4):
            timers.register(user_id, now=0.0)
        fired: dict[int, int] = {}
        now = timers.next_deadline()
        while now is not None and now <= 30.0 + 1e-9:
            for user_id in timers.due(now):
                fired[user_id] = fired.get(user_id, 0) + 1
            now = timers.next_deadline()
        assert fired == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_reregistration_rejected(self):
        timers = RoundTimers(10.0)
        timers.register(1, now=0.0)
        with pytest.raises(ValueError, match="already"):
            timers.register(1, now=0.0)


class TestGuardedSink:
    def _guarded(self, sink, clock, policy=None, breaker=None):
        return GuardedSink(
            sink,
            clock=clock,
            rng=random.Random(11),
            policy=policy or SinkPolicy(),
            breaker=breaker,
        )

    def test_sync_sink_delivers(self):
        clock = SimulatedClock()
        seen = []
        guarded = self._guarded(seen.append, clock)
        assert drive(clock, guarded.deliver(delivery()))
        assert len(seen) == 1
        assert guarded.stats.delivered == 1

    def test_failures_retry_with_backoff_then_exhaust(self):
        clock = SimulatedClock()

        def bad(_delivery):
            raise RuntimeError("push channel down")

        policy = SinkPolicy(max_attempts=3, base_backoff_seconds=1.0)
        guarded = self._guarded(
            bad,
            clock,
            policy=policy,
            breaker=CircuitBreakerConfig(failure_threshold=10),
        )
        assert drive(clock, guarded.deliver(delivery())) is False
        assert guarded.stats.attempts == 3
        assert guarded.stats.failures == 3
        assert guarded.stats.retries == 2
        assert guarded.stats.exhausted == 1
        assert clock.now() > 0.0  # jittered backoff elapsed on the clock

    def test_stalled_sink_times_out_on_the_service_clock(self):
        clock = SimulatedClock()

        async def stalled(_delivery):
            await clock.sleep(120.0)

        policy = SinkPolicy(timeout_seconds=5.0, max_attempts=2)
        guarded = self._guarded(
            stalled,
            clock,
            policy=policy,
            breaker=CircuitBreakerConfig(failure_threshold=10),
        )
        assert drive(clock, guarded.deliver(delivery())) is False
        assert guarded.stats.timeouts == 2
        # Two 5s timeout windows elapsed (plus jittered backoff), not 240s.
        assert 10.0 <= clock.now() < 120.0

    def test_breaker_opens_and_fails_fast(self):
        clock = SimulatedClock()
        calls = []

        def bad(_delivery):
            calls.append(clock.now())
            raise RuntimeError("down")

        guarded = self._guarded(
            bad,
            clock,
            policy=SinkPolicy(max_attempts=1),
            breaker=CircuitBreakerConfig(failure_threshold=2, cooldown_skips=4),
        )

        async def scenario():
            results = []
            for _ in range(4):
                results.append(await guarded.deliver(delivery()))
            return results

        assert drive(clock, scenario()) == [False, False, False, False]
        assert guarded.breaker_state is BreakerState.OPEN
        # Third and fourth deliveries were refused without touching the sink.
        assert len(calls) == 2
        assert guarded.stats.breaker_skips == 2

    def test_half_open_admits_one_probe_across_concurrent_deliveries(self):
        """The async regression the breaker latch exists for: two
        deliveries racing a half-open breaker must produce one probe."""
        clock = SimulatedClock()
        attempts = []

        async def recovering(d):
            attempts.append(d.item.item_id)
            if len(attempts) == 1:
                raise RuntimeError("first call fails")
            await clock.sleep(1.0)  # hold the probe in flight

        guarded = self._guarded(
            recovering,
            clock,
            policy=SinkPolicy(max_attempts=1, timeout_seconds=30.0),
            breaker=CircuitBreakerConfig(failure_threshold=1, cooldown_skips=1),
        )

        async def scenario():
            first = await guarded.deliver(delivery(0))
            skipped = await guarded.deliver(delivery(9))  # cooldown window
            racing = [
                asyncio.ensure_future(guarded.deliver(delivery(1))),
                asyncio.ensure_future(guarded.deliver(delivery(2))),
            ]
            return first, skipped, await asyncio.gather(*racing)

        first, skipped, raced = drive(clock, scenario())
        assert first is False  # opened the breaker
        assert skipped is False  # refused during cooldown
        # Exactly one of the racers was the probe; the other was refused.
        assert sorted(raced) == [False, True]
        assert len(attempts) == 2  # opener + single probe
        assert guarded.stats.breaker_skips == 2  # cooldown + latch refusal
        assert guarded.breaker_state is BreakerState.CLOSED


class TestRoundLoopHooks:
    def test_level_cap_limits_selected_presentation_levels(self):
        capped = make_loop()
        free = make_loop()
        for loop in (capped, free):
            for i in range(4):
                loop.enqueue(item(i, utility=0.9))
        capped.level_cap = 1
        capped_result = capped.run_round(60.0, 60.0)
        free_result = free.run_round(60.0, 60.0)
        assert capped_result.deliveries, "expected deliveries on open WiFi"
        assert all(d.level <= 1 for d in capped_result.deliveries)
        # The cap binds: without it the same queue picks richer levels.
        assert max(d.level for d in free_result.deliveries) > 1

    def test_observers_see_every_round_result(self):
        loop = make_loop()
        loop.enqueue(item(0))
        seen = []
        loop.add_observer(lambda lp, result: seen.append((lp, result)))
        result = loop.run_round(60.0, 60.0)
        assert seen == [(loop, result)]


class TestServiceAdmission:
    def _service(self, config=None, users=(1, 2)):
        clock = SimulatedClock()
        service = NotificationService(
            loop_factory=make_loop,
            user_ids=list(users),
            config=config or ServiceConfig(queue_bound=2),
            clock=clock,
        )
        return service, clock

    def _ingest(self, service, *items):
        async def scenario():
            return [await service.ingest(it) for it in items]

        return asyncio.run(scenario())

    def test_admits_until_the_bound_then_sheds_explicitly(self):
        service, _ = self._service()
        results = self._ingest(
            service, item(0), item(1), item(2), item(3, user_id=2)
        )
        assert [r.outcome for r in results] == [
            Admission.ADMITTED,
            Admission.ADMITTED,
            Admission.SHED_QUEUE_FULL,
            Admission.ADMITTED,
        ]
        overload = results[2]
        assert overload.overload and not overload.admitted
        assert overload.queue_depth == 2
        assert "bound 2" in overload.detail
        assert service.conservation_error() == 0

    def test_rate_limited_ingest_is_an_explicit_overload(self):
        config = ServiceConfig(
            queue_bound=8,
            rate=RateLimitConfig(per_user_rate=1.0, per_user_burst=1.0),
        )
        service, _ = self._service(config=config)
        results = self._ingest(service, item(0), item(1))
        assert results[0].admitted
        assert results[1].outcome is Admission.SHED_RATE_LIMITED
        assert "user" in results[1].detail
        assert service.stats.shed_rate_limited == 1
        assert service.conservation_error() == 0

    def test_shed_and_defer_follow_the_ladder(self):
        service, _ = self._service(config=ServiceConfig(queue_bound=4))
        service.controller.update(0.0, occupancy=0.8)  # DEFER
        deferred = self._ingest(service, item(0))[0]
        assert deferred.outcome is Admission.DEFERRED
        assert service.deferred_pending == 1
        service.controller.update(1.0, occupancy=0.95)  # SHED
        shed = self._ingest(service, item(1))[0]
        assert shed.outcome is Admission.SHED_OVERLOAD
        assert service.conservation_error() == 0

    def test_service_requires_users_and_single_run(self):
        with pytest.raises(ValueError, match="at least one user"):
            NotificationService(loop_factory=make_loop, user_ids=[])
        service, clock = self._service()

        async def run_twice():
            await service.run(rounds=1)
            await service.run(rounds=1)

        with pytest.raises(RuntimeError, match="already ran"):
            drive(clock, run_twice())

    def test_config_validation(self):
        with pytest.raises(ValueError, match="round_seconds"):
            ServiceConfig(round_seconds=0.0)
        with pytest.raises(ValueError, match="queue_bound"):
            ServiceConfig(queue_bound=0)


class TestServiceRuns:
    def test_sinkless_run_delivers_and_conserves(self):
        clock = SimulatedClock()
        service = NotificationService(
            loop_factory=make_loop,
            user_ids=[1, 2],
            config=ServiceConfig(round_seconds=60.0, queue_bound=8, seed=3),
            clock=clock,
        )

        async def scenario():
            run_task = asyncio.ensure_future(service.run(rounds=2))
            for i in range(4):
                await service.ingest(item(i, user_id=1 + i % 2))
            await run_task

        drive(clock, scenario())
        accounting = service.accounting()
        assert accounting["ingested"] == 4
        assert accounting["error"] == 0
        assert accounting["delivered"] + accounting["pending"] == 4
        assert service.stats.rounds_run == 4  # 2 users x 2 rounds
        assert service.health().healthy

    def test_deferred_events_readmit_when_pressure_clears(self):
        clock = SimulatedClock()
        service = NotificationService(
            loop_factory=make_loop,
            user_ids=[1],
            config=ServiceConfig(round_seconds=60.0, queue_bound=8, seed=3),
            clock=clock,
        )
        service.controller.update(0.0, occupancy=0.8)  # start at DEFER

        async def scenario():
            run_task = asyncio.ensure_future(service.run(rounds=2))
            for i in range(3):
                await service.ingest(item(i))
            await run_task

        drive(clock, scenario())
        # Pressure cleared on the first tick; the parked events flowed
        # back through _admit and on to delivery.
        assert service.stats.deferred_total == 3
        assert service.stats.readmitted == 3
        assert service.deferred_pending == 0
        assert service.conservation_error() == 0
        assert service.stats.delivered + service.accounting()["pending"] == 3


@pytest.mark.chaos
class TestFlashCrowdChaos:
    """The tentpole acceptance gate, on the deterministic clock."""

    @pytest.fixture(scope="class")
    def run(self):
        return run_demo(DemoConfig(users=12, rounds=12))

    def test_conservation_is_exact(self, run):
        accounting = run.service.accounting()
        assert accounting["error"] == 0
        assert accounting["ingested"] == len(run.ingest_results)
        total = (
            accounting["delivered"]
            + accounting["shed"]
            + accounting["dead_lettered"]
            + accounting["deferred_pending"]
            + accounting["pending"]
        )
        assert total == accounting["ingested"]

    def test_queues_never_exceed_their_bound(self, run):
        bound = run.service.config.queue_bound
        assert run.service.frontier.high_water() <= bound
        assert run.service.frontier.high_water() > 0

    def test_overloads_are_explicit_results(self, run):
        by_outcome: dict[Admission, int] = {}
        for result in run.ingest_results:
            by_outcome[result.outcome] = by_outcome.get(result.outcome, 0) + 1
        stats = run.service.stats
        assert len(run.ingest_results) == stats.ingested
        assert (
            by_outcome.get(Admission.SHED_RATE_LIMITED, 0)
            == stats.shed_rate_limited
        )
        assert by_outcome.get(Admission.SHED_OVERLOAD, 0) == stats.shed_overload
        assert by_outcome.get(Admission.DEFERRED, 0) == stats.deferred_total
        # Readmitted deferrals re-enter through _admit without surfacing a
        # second IngestResult, so admitted/shed_queue_full only balance
        # once the readmission flow is folded back in.
        assert stats.admitted + stats.shed_queue_full == (
            by_outcome.get(Admission.ADMITTED, 0)
            + by_outcome.get(Admission.SHED_QUEUE_FULL, 0)
            + stats.readmitted
        )
        assert stats.readmitted == (
            stats.deferred_total - run.service.deferred_pending
        )
        # The flash crowd actually overflowed something.
        assert stats.shed > 0
        assert any(r.overload for r in run.ingest_results)

    def test_ladder_escalates_and_recovers(self, run):
        controller = run.service.controller
        assert controller.max_level >= PressureLevel.DEFER
        assert controller.level is PressureLevel.NORMAL  # recovered
        assert len(controller.transitions) >= 2
        assert run.service.stats.readmitted > 0

    def test_latency_is_bounded_under_overload(self, run):
        stats = run.service.stats
        assert stats.delivered > 0
        p50 = stats.latency_quantile(0.5)
        p99 = stats.latency_quantile(0.99)
        assert 0.0 < p50 <= p99
        # Bounded queues + TTL dead-lettering keep the tail under the
        # run's TTL; unbounded queueing would blow far past it.
        assert p99 <= DemoConfig().ttl_seconds

    def test_payload_matches_service_state(self, run):
        payload = run.payload
        assert payload["schema"] == "richnote-bench-service/1"
        assert payload["accounting"]["error"] == 0
        assert payload["throughput"]["delivered"] == run.service.stats.delivered
        assert payload["latency_s"]["count"] == run.service.stats.delivered
        assert payload["pressure"]["max_level"] == run.service.controller.max_level.name
        assert payload["meta"]["users"] == 12


class TestDeliveryTaskRetention:
    """Regression pin for richlint RL703 (fire-and-forget tasks).

    ``_fire_round`` spawns egress with ``asyncio.ensure_future``; the
    event loop holds only *weak* references to tasks, so if the handle
    were discarded the egress task could be garbage-collected mid-push
    and deliveries would silently vanish.  The handle must land in
    ``_delivery_tasks`` (reaped each tick, gathered at shutdown).
    """

    def test_fire_round_retains_its_egress_task_handle(self):
        clock = SimulatedClock()
        service = NotificationService(
            loop_factory=make_loop,
            user_ids=[1],
            config=ServiceConfig(queue_bound=8),
            clock=clock,
        )

        async def scenario():
            await service.ingest(item(0, utility=0.9))
            service._fire_round(1, now=60.0)
            # The spawn in _fire_round must be retained, not bare.
            assert len(service._delivery_tasks) == 1
            await asyncio.gather(*service._delivery_tasks)
            service._reap_delivery_tasks()
            assert service._delivery_tasks == []

        asyncio.run(scenario())
        assert service.stats.delivered > 0
        assert service.conservation_error() == 0

    def test_richlint_finds_no_fire_and_forget_in_service_layer(self):
        from pathlib import Path

        from repro.analysis import analyze_paths

        repo_root = Path(__file__).parent.parent
        report = analyze_paths(
            [repo_root / "src" / "repro" / "service"],
            root=repo_root,
            select="RL703",
        )
        assert not report.parse_errors
        assert report.findings == []
