"""Tests for the data and energy budgets (Algorithm 2, steps 2-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budgets import DataBudget, EnergyBudget


class TestDataBudget:
    def test_starts_with_initial(self):
        budget = DataBudget(theta_bytes=100, initial_bytes=50)
        assert budget.available == 50

    def test_replenish_adds_theta(self):
        budget = DataBudget(theta_bytes=100)
        budget.replenish()
        budget.replenish()
        assert budget.available == 200  # rollover accumulates

    def test_debit_reduces(self):
        budget = DataBudget(theta_bytes=100, initial_bytes=100)
        budget.debit(30)
        assert budget.available == 70

    def test_debit_beyond_available_raises(self):
        budget = DataBudget(theta_bytes=10, initial_bytes=10)
        with pytest.raises(ValueError):
            budget.debit(11)

    def test_negative_debit_rejected(self):
        budget = DataBudget(theta_bytes=10, initial_bytes=10)
        with pytest.raises(ValueError):
            budget.debit(-1)

    def test_cap_limits_rollover(self):
        budget = DataBudget(theta_bytes=100, cap_bytes=150)
        budget.replenish()
        budget.replenish()
        assert budget.available == 150

    def test_can_afford(self):
        budget = DataBudget(theta_bytes=0, initial_bytes=10)
        assert budget.can_afford(10)
        assert not budget.can_afford(10.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DataBudget(theta_bytes=-1)
        with pytest.raises(ValueError):
            DataBudget(theta_bytes=1, initial_bytes=-1)
        with pytest.raises(ValueError):
            DataBudget(theta_bytes=1, cap_bytes=-5)

    @given(
        theta=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        debits=st.lists(st.floats(min_value=0, max_value=1e5), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_negative(self, theta, debits):
        budget = DataBudget(theta_bytes=theta)
        for amount in debits:
            budget.replenish()
            if budget.can_afford(amount):
                budget.debit(amount)
            assert budget.available >= 0


class TestEnergyBudget:
    def test_starts_at_kappa_by_default(self):
        budget = EnergyBudget(kappa_joules=3000)
        assert budget.available == 3000

    def test_replenish_only_when_at_or_below_kappa(self):
        budget = EnergyBudget(kappa_joules=100, initial_joules=100)
        accepted = budget.replenish(50)
        assert accepted == 50
        assert budget.available == 150
        # Now above kappa: replenishment refused.
        assert budget.replenish(50) == 0.0
        assert budget.available == 150

    def test_debit_floors_at_zero(self):
        # The [.]^+ in the queue update (Eq. 5).
        budget = EnergyBudget(kappa_joules=100, initial_joules=10)
        budget.debit(50)
        assert budget.available == 0.0

    def test_deviation_from_kappa(self):
        budget = EnergyBudget(kappa_joules=100, initial_joules=40)
        assert budget.deviation_from_kappa() == -60

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EnergyBudget(kappa_joules=0)
        with pytest.raises(ValueError):
            EnergyBudget(kappa_joules=10, initial_joules=-1)

    def test_negative_flows_rejected(self):
        budget = EnergyBudget(kappa_joules=10)
        with pytest.raises(ValueError):
            budget.replenish(-1)
        with pytest.raises(ValueError):
            budget.debit(-1)

    @given(
        flows=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=500),
                st.floats(min_value=0, max_value=500),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hovers_with_bounded_spend(self, flows):
        """P(t) stays within [0, kappa + max single replenishment]."""
        kappa = 100.0
        budget = EnergyBudget(kappa_joules=kappa)
        for replenish, debit in flows:
            budget.replenish(replenish)
            budget.debit(debit)
            assert 0.0 <= budget.available <= kappa + 500.0
