"""Tests for the synthetic trace generator."""

import pytest

from repro.pubsub.topics import TopicKind
from repro.trace.entities import CatalogConfig, generate_catalog
from repro.trace.generator import (
    TraceConfig,
    TraceGenerator,
    WorkloadSpec,
    build_workload,
    diurnal_factor,
    poisson_sample,
)
from repro.trace.socialgraph import SocialGraphConfig, generate_social_graph

import random


def small_spec(**trace_overrides):
    trace = TraceConfig(duration_hours=24.0, seed=5, **trace_overrides)
    return WorkloadSpec(
        catalog=CatalogConfig(n_users=25, n_artists=15, n_playlists=8, seed=1),
        graph=SocialGraphConfig(n_users=25, seed=2),
        trace=trace,
    )


class TestPoissonSample:
    def test_zero_rate(self):
        assert poisson_sample(random.Random(0), 0.0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_sample(random.Random(0), -1.0)

    def test_mean_tracks_lambda(self):
        rng = random.Random(1)
        for lam in (0.5, 3.0, 50.0):
            draws = [poisson_sample(rng, lam) for _ in range(4000)]
            assert sum(draws) / len(draws) == pytest.approx(lam, rel=0.1)


class TestDiurnalFactor:
    def test_night_is_quiet(self):
        assert diurnal_factor(3.0) < diurnal_factor(15.0)

    def test_evening_peak(self):
        assert diurnal_factor(19.0) > diurnal_factor(9.0)

    def test_wraps_around(self):
        assert diurnal_factor(25.0) == diurnal_factor(1.0)


class TestSubscriptions:
    def test_users_follow_their_friends(self):
        spec = small_spec()
        catalog = generate_catalog(spec.catalog)
        graph = generate_social_graph(spec.graph)
        generator = TraceGenerator(catalog, graph, spec.trace)
        store = generator.build_subscriptions()
        for user_id in list(catalog.users)[:10]:
            friend_topics = store.topics_of_kind(user_id, TopicKind.FRIEND)
            assert {t.entity_id for t in friend_topics} == graph.friends(user_id)

    def test_artist_follow_counts(self):
        spec = small_spec(artist_follows_per_user=4)
        catalog = generate_catalog(spec.catalog)
        graph = generate_social_graph(spec.graph)
        store = TraceGenerator(catalog, graph, spec.trace).build_subscriptions()
        for user_id in list(catalog.users)[:10]:
            assert len(store.topics_of_kind(user_id, TopicKind.ARTIST)) == 4


class TestWorkload:
    def test_records_sorted_and_labelled(self):
        workload = build_workload(small_spec())
        assert workload.records
        timestamps = [r.timestamp for r in workload.records]
        assert timestamps == sorted(timestamps)
        assert any(r.clicked for r in workload.records)
        assert any(r.hovered and not r.clicked for r in workload.records)
        assert any(not r.hovered for r in workload.records)

    def test_friend_records_dominate(self):
        """Friend feeds are 'frequent and large in number' (Section II)."""
        workload = build_workload(small_spec())
        kinds = [r.kind for r in workload.records]
        assert kinds.count(TopicKind.FRIEND) > len(kinds) / 2

    def test_deterministic_under_seed(self):
        a = build_workload(small_spec())
        b = build_workload(small_spec())
        assert len(a.records) == len(b.records)
        assert all(
            (x.notification_id, x.clicked, x.timestamp)
            == (y.notification_id, y.clicked, y.timestamp)
            for x, y in zip(a.records, b.records)
        )

    def test_recipient_never_sender(self):
        workload = build_workload(small_spec())
        for record in workload.records:
            if record.kind is TopicKind.FRIEND:
                assert record.recipient_id != record.sender_id

    def test_tie_strength_only_for_friend_records(self):
        workload = build_workload(small_spec())
        for record in workload.records:
            if record.kind is not TopicKind.FRIEND:
                assert record.tie_strength == 0.0
                assert not record.is_friend

    def test_records_for_user_and_top_users(self):
        workload = build_workload(small_spec())
        top = workload.top_users(5)
        assert len(top) == 5
        counts = [len(workload.records_for_user(u)) for u in top]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == max(
            len(workload.records_for_user(u)) for u in workload.user_ids()
        )

    def test_rate_scale_scales_volume(self):
        light = build_workload(small_spec(listen_rate_scale=0.2))
        heavy = build_workload(small_spec(listen_rate_scale=1.0))
        assert len(heavy.records) > 2 * len(light.records)

    def test_spec_user_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                catalog=CatalogConfig(n_users=10),
                graph=SocialGraphConfig(n_users=20),
            )

    def test_trace_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(duration_hours=0)
        with pytest.raises(ValueError):
            TraceConfig(favorite_pick_probability=1.5)
