"""Tests for the Markov connectivity model (Section V-D3)."""

import random
from collections import Counter

import pytest

from repro.sim.network import (
    DEFAULT_TRANSITIONS,
    CellularOnlyNetwork,
    MarkovNetworkModel,
    NetworkState,
    stationary_distribution,
)


class TestTransitions:
    def test_default_matrix_matches_paper(self):
        """50% self-loop, equal split of the remainder, for every state."""
        for state, row in DEFAULT_TRANSITIONS.items():
            assert row[state] == 0.5
            others = [p for target, p in row.items() if target != state]
            assert all(p == 0.25 for p in others)

    def test_rows_sum_to_one(self):
        for row in DEFAULT_TRANSITIONS.values():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_invalid_matrix_rejected(self):
        bad = {
            NetworkState.WIFI: {NetworkState.WIFI: 1.5, NetworkState.CELL: -0.5,
                                NetworkState.OFF: 0.0},
            NetworkState.CELL: DEFAULT_TRANSITIONS[NetworkState.CELL],
            NetworkState.OFF: DEFAULT_TRANSITIONS[NetworkState.OFF],
        }
        with pytest.raises(ValueError):
            MarkovNetworkModel(transitions=bad)

    def test_missing_row_rejected(self):
        with pytest.raises(ValueError):
            MarkovNetworkModel(transitions={NetworkState.WIFI: {NetworkState.WIFI: 1.0}})


class TestMarkovModel:
    def test_initial_state(self):
        model = MarkovNetworkModel(initial_state=NetworkState.WIFI)
        assert model.state is NetworkState.WIFI
        assert model.connected

    def test_off_means_disconnected_zero_bandwidth(self):
        model = MarkovNetworkModel(initial_state=NetworkState.OFF)
        assert not model.connected
        assert model.bandwidth == 0.0
        assert model.capacity_per_round(3600.0) == 0.0

    def test_step_visits_all_states(self):
        model = MarkovNetworkModel(rng=random.Random(3))
        visited = Counter(model.step() for _ in range(500))
        assert set(visited) == set(NetworkState)

    def test_empirical_distribution_near_uniform(self):
        """The paper's chain is doubly stochastic: stationary = 1/3 each."""
        model = MarkovNetworkModel(rng=random.Random(7))
        visited = Counter()
        for _ in range(6000):
            visited[model.step()] += 1
        for state in NetworkState:
            assert visited[state] / 6000 == pytest.approx(1 / 3, abs=0.04)

    def test_deterministic_under_seed(self):
        a = MarkovNetworkModel(rng=random.Random(42))
        b = MarkovNetworkModel(rng=random.Random(42))
        assert [a.step() for _ in range(50)] == [b.step() for _ in range(50)]

    def test_capacity_scales_with_round_length(self):
        model = MarkovNetworkModel(initial_state=NetworkState.CELL)
        assert model.capacity_per_round(2.0) == pytest.approx(2 * model.bandwidth)
        with pytest.raises(ValueError):
            model.capacity_per_round(-1.0)


class TestCellularOnly:
    def test_always_connected_cell(self):
        model = CellularOnlyNetwork()
        for _ in range(5):
            assert model.step() is NetworkState.CELL
        assert model.connected
        assert model.bandwidth > 0


class TestStationaryDistribution:
    def test_uniform_for_default_chain(self):
        dist = stationary_distribution()
        for state in NetworkState:
            assert dist[state] == pytest.approx(1 / 3, abs=1e-9)

    def test_respects_biased_chain(self):
        sticky_wifi = {
            NetworkState.WIFI: {NetworkState.WIFI: 0.9, NetworkState.CELL: 0.05,
                                NetworkState.OFF: 0.05},
            NetworkState.CELL: {NetworkState.WIFI: 0.5, NetworkState.CELL: 0.4,
                                NetworkState.OFF: 0.1},
            NetworkState.OFF: {NetworkState.WIFI: 0.5, NetworkState.CELL: 0.1,
                               NetworkState.OFF: 0.4},
        }
        dist = stationary_distribution(sticky_wifi)
        assert dist[NetworkState.WIFI] > 0.7
        assert sum(dist.values()) == pytest.approx(1.0)
