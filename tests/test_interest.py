"""Tests for the latent ground-truth interest model."""

import random

import pytest

from repro.trace.interest import InterestFeatures, LatentInterestModel, sigmoid


def features(**overrides):
    base = dict(
        tie_strength=0.3,
        favorite_genre=False,
        popularity=50,
        hour_of_day=12.0,
        is_weekend=False,
    )
    base.update(overrides)
    return InterestFeatures(**base)


class TestSigmoid:
    def test_symmetry(self):
        assert sigmoid(0.0) == 0.5
        assert sigmoid(3.0) + sigmoid(-3.0) == pytest.approx(1.0)

    def test_extremes_stable(self):
        assert sigmoid(1000.0) == 1.0
        assert sigmoid(-1000.0) == pytest.approx(0.0)


class TestFeatureValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            features(tie_strength=1.5)
        with pytest.raises(ValueError):
            features(popularity=0)
        with pytest.raises(ValueError):
            features(hour_of_day=24.0)


class TestClickProbability:
    def test_strong_tie_raises_probability(self):
        model = LatentInterestModel()
        weak = model.click_probability(features(tie_strength=0.0))
        strong = model.click_probability(features(tie_strength=1.0))
        assert strong > weak

    def test_favorite_genre_raises_probability(self):
        model = LatentInterestModel()
        assert model.click_probability(
            features(favorite_genre=True)
        ) > model.click_probability(features(favorite_genre=False))

    def test_popularity_raises_probability(self):
        model = LatentInterestModel()
        assert model.click_probability(
            features(popularity=95)
        ) > model.click_probability(features(popularity=5))

    def test_evening_boost_window(self):
        model = LatentInterestModel()
        midday = model.click_probability(features(hour_of_day=12.0))
        evening = model.click_probability(features(hour_of_day=20.0))
        late_night = model.click_probability(features(hour_of_day=23.5))
        assert evening > midday
        assert late_night == pytest.approx(midday)

    def test_probability_in_unit_interval(self):
        model = LatentInterestModel()
        for tie in (0.0, 0.5, 1.0):
            for pop in (1, 50, 100):
                p = model.click_probability(features(tie_strength=tie, popularity=pop))
                assert 0.0 < p < 1.0


class TestSampling:
    def test_click_rate_tracks_probability(self):
        model = LatentInterestModel(noise_std=0.0, rng=random.Random(1))
        target = features(tie_strength=0.9, favorite_genre=True, popularity=90)
        p = model.click_probability(target)
        clicks = sum(model.sample_click(target) for _ in range(3000)) / 3000
        assert clicks == pytest.approx(p, abs=0.04)

    def test_noise_flattens_conditional_rates(self):
        """Logit noise pulls empirical rates toward 0.5 (irreducible error)."""
        quiet = LatentInterestModel(noise_std=0.0, rng=random.Random(2))
        noisy = LatentInterestModel(noise_std=3.0, rng=random.Random(2))
        low_interest = features(tie_strength=0.0, popularity=1)
        n = 4000
        rate_quiet = sum(quiet.sample_click(low_interest) for _ in range(n)) / n
        rate_noisy = sum(noisy.sample_click(low_interest) for _ in range(n)) / n
        assert rate_noisy > rate_quiet

    def test_attention_rate(self):
        model = LatentInterestModel(attention_probability=0.3, rng=random.Random(3))
        rate = sum(model.sample_attention() for _ in range(4000)) / 4000
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_click_delay_positive_and_capped(self):
        model = LatentInterestModel(rng=random.Random(4))
        delays = [model.sample_click_delay() for _ in range(500)]
        assert all(0.0 <= d <= 86400.0 for d in delays)
        # Mean around two hours.
        assert 3600.0 < sum(delays) / len(delays) < 14400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatentInterestModel(attention_probability=0.0)
        with pytest.raises(ValueError):
            LatentInterestModel(noise_std=-1.0)
