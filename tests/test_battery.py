"""Tests for synthetic battery traces."""

import random

import pytest

from repro.sim.battery import BatterySample, BatteryTrace, DiurnalBatteryModel

DAY = 86400.0


class TestBatterySample:
    def test_level_bounds(self):
        with pytest.raises(ValueError):
            BatterySample(time=0.0, level=1.5, charging=False)


class TestBatteryTrace:
    def trace(self):
        return BatteryTrace(
            [
                BatterySample(0.0, 1.0, charging=False),
                BatterySample(3600.0, 0.8, charging=False),
                BatterySample(7200.0, 0.6, charging=True),
            ]
        )

    def test_step_lookup_semantics(self):
        trace = self.trace()
        assert trace.level(0.0) == 1.0
        assert trace.level(3599.0) == 1.0
        assert trace.level(3600.0) == 0.8
        assert trace.level(999_999.0) == 0.6  # last sample persists

    def test_query_before_first_sample(self):
        trace = BatteryTrace([BatterySample(100.0, 0.5, False)])
        assert trace.level(0.0) == 0.5

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            BatteryTrace([])

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(ValueError):
            BatteryTrace(
                [BatterySample(0.0, 1.0, False), BatterySample(0.0, 0.9, False)]
            )

    def test_unsorted_samples_accepted_and_ordered(self):
        trace = BatteryTrace(
            [BatterySample(3600.0, 0.5, False), BatterySample(0.0, 1.0, False)]
        )
        assert trace.level(10.0) == 1.0


class TestReplenishment:
    def test_charging_grants_full_kappa(self):
        trace = BatteryTrace([BatterySample(0.0, 0.3, charging=True)])
        assert trace.replenishment(0.0, 3000.0) == 3000.0

    def test_discharging_scales_with_level(self):
        trace = BatteryTrace([BatterySample(0.0, 0.5, charging=False)])
        assert trace.replenishment(0.0, 3000.0) == pytest.approx(1500.0)

    def test_floor_at_twenty_percent(self):
        trace = BatteryTrace([BatterySample(0.0, 0.10, charging=False)])
        assert trace.replenishment(0.0, 3000.0) == pytest.approx(600.0)

    def test_nearly_dead_battery_grants_nothing(self):
        trace = BatteryTrace([BatterySample(0.0, 0.04, charging=False)])
        assert trace.replenishment(0.0, 3000.0) == 0.0

    def test_negative_kappa_rejected(self):
        trace = BatteryTrace([BatterySample(0.0, 1.0, False)])
        with pytest.raises(ValueError):
            trace.replenishment(0.0, -1.0)


class TestDiurnalModel:
    def test_generates_requested_span(self):
        model = DiurnalBatteryModel(rng=random.Random(1))
        trace = model.generate(3 * DAY, sample_period_seconds=3600.0)
        assert len(trace) == 3 * 24 + 1

    def test_levels_stay_in_bounds(self):
        model = DiurnalBatteryModel(rng=random.Random(2))
        trace = model.generate(7 * DAY)
        assert all(0.0 <= s.level <= 1.0 for s in trace)

    def test_overnight_charging_recovers_battery(self):
        """The battery should charge during the night window on most days."""
        model = DiurnalBatteryModel(rng=random.Random(3), jitter=0.0)
        trace = model.generate(2 * DAY)
        # At 03:00 each night the device is plugged in.
        assert trace.charging(3 * 3600.0)
        assert trace.charging(DAY + 3 * 3600.0)

    def test_daytime_drains(self):
        model = DiurnalBatteryModel(rng=random.Random(4), jitter=0.0)
        trace = model.generate(DAY)
        # Level mid-afternoon below the post-charge morning level.
        assert trace.level(15 * 3600.0) < trace.level(8 * 3600.0)

    def test_deterministic_under_seed(self):
        t1 = DiurnalBatteryModel(rng=random.Random(9)).generate(DAY)
        t2 = DiurnalBatteryModel(rng=random.Random(9)).generate(DAY)
        assert [s.level for s in t1] == [s.level for s in t2]

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalBatteryModel(drain_per_hour=0.0)
        with pytest.raises(ValueError):
            DiurnalBatteryModel(charge_per_hour=1.5)
        with pytest.raises(ValueError):
            DiurnalBatteryModel().generate(-1.0)
        with pytest.raises(ValueError):
            DiurnalBatteryModel().generate(100.0, sample_period_seconds=0.0)


class TestReplenishmentColumn:
    """The columnar fast path replays generate() bit for bit."""

    @pytest.mark.parametrize("seed", [1, 7, 97])
    @pytest.mark.parametrize(
        "round_seconds,duration",
        [
            (3600.0, 168 * 3600.0),  # the paper's weekly grid
            (600.0, DAY),            # sub-hourly rounds
            (3600.0, 1800.0),        # duration shorter than one round
        ],
    )
    def test_matches_materialized_trace_exactly(
        self, seed, round_seconds, duration
    ):
        kappa = 30.0
        # Ask for more rounds than the trace holds so the past-the-end
        # clamp (last sample repeats) is exercised too.
        n_rounds = int(duration // round_seconds) + 5
        reference = DiurnalBatteryModel(rng=random.Random(seed)).generate(
            duration + round_seconds, sample_period_seconds=round_seconds
        )
        samples = list(reference)
        last = len(samples) - 1
        expected = [
            reference.sample_replenishment(
                samples[k + 1 if k + 1 <= last else last], kappa
            )
            for k in range(n_rounds)
        ]
        column = DiurnalBatteryModel(
            rng=random.Random(seed)
        ).replenishment_column(n_rounds, round_seconds, duration, kappa)
        assert column == expected  # exact: same floats, not approx

    def test_consumes_the_same_rng_draws(self):
        """Interleaving-sensitive: the fast path must leave the RNG in the
        identical state the materializing path does."""
        rng_a, rng_b = random.Random(11), random.Random(11)
        DiurnalBatteryModel(rng=rng_a).generate(
            DAY + 3600.0, sample_period_seconds=3600.0
        )
        DiurnalBatteryModel(rng=rng_b).replenishment_column(
            24, 3600.0, DAY, 30.0
        )
        assert rng_a.random() == rng_b.random()

    def test_validation(self):
        model = DiurnalBatteryModel(rng=random.Random(1))
        with pytest.raises(ValueError):
            model.replenishment_column(-1, 3600.0, DAY, 30.0)
        with pytest.raises(ValueError):
            model.replenishment_column(10, 0.0, DAY, 30.0)
        with pytest.raises(ValueError):
            model.replenishment_column(10, 3600.0, -1.0, 30.0)
        with pytest.raises(ValueError):
            model.replenishment_column(10, 3600.0, DAY, -1.0)
        with pytest.raises(ValueError):
            model.replenishment_column(
                10, 3600.0, DAY, 30.0, initial_level=1.5
            )
