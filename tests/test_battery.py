"""Tests for synthetic battery traces."""

import random

import pytest

from repro.sim.battery import BatterySample, BatteryTrace, DiurnalBatteryModel

DAY = 86400.0


class TestBatterySample:
    def test_level_bounds(self):
        with pytest.raises(ValueError):
            BatterySample(time=0.0, level=1.5, charging=False)


class TestBatteryTrace:
    def trace(self):
        return BatteryTrace(
            [
                BatterySample(0.0, 1.0, charging=False),
                BatterySample(3600.0, 0.8, charging=False),
                BatterySample(7200.0, 0.6, charging=True),
            ]
        )

    def test_step_lookup_semantics(self):
        trace = self.trace()
        assert trace.level(0.0) == 1.0
        assert trace.level(3599.0) == 1.0
        assert trace.level(3600.0) == 0.8
        assert trace.level(999_999.0) == 0.6  # last sample persists

    def test_query_before_first_sample(self):
        trace = BatteryTrace([BatterySample(100.0, 0.5, False)])
        assert trace.level(0.0) == 0.5

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            BatteryTrace([])

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(ValueError):
            BatteryTrace(
                [BatterySample(0.0, 1.0, False), BatterySample(0.0, 0.9, False)]
            )

    def test_unsorted_samples_accepted_and_ordered(self):
        trace = BatteryTrace(
            [BatterySample(3600.0, 0.5, False), BatterySample(0.0, 1.0, False)]
        )
        assert trace.level(10.0) == 1.0


class TestReplenishment:
    def test_charging_grants_full_kappa(self):
        trace = BatteryTrace([BatterySample(0.0, 0.3, charging=True)])
        assert trace.replenishment(0.0, 3000.0) == 3000.0

    def test_discharging_scales_with_level(self):
        trace = BatteryTrace([BatterySample(0.0, 0.5, charging=False)])
        assert trace.replenishment(0.0, 3000.0) == pytest.approx(1500.0)

    def test_floor_at_twenty_percent(self):
        trace = BatteryTrace([BatterySample(0.0, 0.10, charging=False)])
        assert trace.replenishment(0.0, 3000.0) == pytest.approx(600.0)

    def test_nearly_dead_battery_grants_nothing(self):
        trace = BatteryTrace([BatterySample(0.0, 0.04, charging=False)])
        assert trace.replenishment(0.0, 3000.0) == 0.0

    def test_negative_kappa_rejected(self):
        trace = BatteryTrace([BatterySample(0.0, 1.0, False)])
        with pytest.raises(ValueError):
            trace.replenishment(0.0, -1.0)


class TestDiurnalModel:
    def test_generates_requested_span(self):
        model = DiurnalBatteryModel(rng=random.Random(1))
        trace = model.generate(3 * DAY, sample_period_seconds=3600.0)
        assert len(trace) == 3 * 24 + 1

    def test_levels_stay_in_bounds(self):
        model = DiurnalBatteryModel(rng=random.Random(2))
        trace = model.generate(7 * DAY)
        assert all(0.0 <= s.level <= 1.0 for s in trace)

    def test_overnight_charging_recovers_battery(self):
        """The battery should charge during the night window on most days."""
        model = DiurnalBatteryModel(rng=random.Random(3), jitter=0.0)
        trace = model.generate(2 * DAY)
        # At 03:00 each night the device is plugged in.
        assert trace.charging(3 * 3600.0)
        assert trace.charging(DAY + 3 * 3600.0)

    def test_daytime_drains(self):
        model = DiurnalBatteryModel(rng=random.Random(4), jitter=0.0)
        trace = model.generate(DAY)
        # Level mid-afternoon below the post-charge morning level.
        assert trace.level(15 * 3600.0) < trace.level(8 * 3600.0)

    def test_deterministic_under_seed(self):
        t1 = DiurnalBatteryModel(rng=random.Random(9)).generate(DAY)
        t2 = DiurnalBatteryModel(rng=random.Random(9)).generate(DAY)
        assert [s.level for s in t1] == [s.level for s in t2]

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalBatteryModel(drain_per_hour=0.0)
        with pytest.raises(ValueError):
            DiurnalBatteryModel(charge_per_hour=1.5)
        with pytest.raises(ValueError):
            DiurnalBatteryModel().generate(-1.0)
        with pytest.raises(ValueError):
            DiurnalBatteryModel().generate(100.0, sample_period_seconds=0.0)
