"""Tests for the audio presentation ladder generator."""

import math

import pytest

from repro.core.presentations import (
    BYTES_PER_SECOND,
    METADATA_SIZE_BYTES,
    AudioPresentationSpec,
    build_audio_ladder,
    fixed_level_ladder,
    logarithmic_duration_utility,
    polynomial_duration_utility,
)


class TestDurationUtilityCurves:
    def test_logarithmic_matches_paper_constants(self):
        # Eq. 8: util(d) = -0.397 + 0.352 log(1 + d)
        assert logarithmic_duration_utility(10.0) == pytest.approx(
            -0.397 + 0.352 * math.log(11.0)
        )

    def test_logarithmic_clamped_at_zero_for_tiny_durations(self):
        assert logarithmic_duration_utility(0.0) == 0.0
        assert logarithmic_duration_utility(1.0) == 0.0  # raw fit is negative

    def test_logarithmic_monotone_over_survey_range(self):
        values = [logarithmic_duration_utility(d) for d in (5, 10, 20, 30, 40)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_logarithmic_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            logarithmic_duration_utility(-1.0)

    def test_polynomial_matches_paper_constants(self):
        # Eq. 9: util(d) = 0.253 (1 - d/40)^2.087
        assert polynomial_duration_utility(10.0) == pytest.approx(
            0.253 * (0.75) ** 2.087
        )

    def test_polynomial_zero_beyond_horizon(self):
        assert polynomial_duration_utility(40.0) == 0.0
        assert polynomial_duration_utility(50.0) == 0.0


class TestAudioLadder:
    def test_default_ladder_has_paper_levels(self):
        ladder = build_audio_ladder()
        # level 0 + metadata + five preview durations
        assert ladder.max_level == 6
        assert ladder.size(0) == 0
        assert ladder.size(1) == METADATA_SIZE_BYTES

    def test_preview_sizes_follow_160kbps(self):
        # d-second preview = d x 20 KB at 160 kbps (Section V-C)
        ladder = build_audio_ladder()
        for level, duration in zip(range(2, 7), (5, 10, 20, 30, 40)):
            expected = METADATA_SIZE_BYTES + duration * BYTES_PER_SECOND
            assert ladder.size(level) == expected
        assert BYTES_PER_SECOND == 20_000

    def test_richest_level_has_unit_utility(self):
        ladder = build_audio_ladder()
        assert ladder.utility(6) == pytest.approx(1.0)

    def test_metadata_utility_fraction(self):
        ladder = build_audio_ladder()
        assert ladder.utility(1) == pytest.approx(0.01)

    def test_utilities_strictly_increase(self):
        ladder = build_audio_ladder()
        utilities = [ladder.utility(level) for level in range(7)]
        assert all(b > a for a, b in zip(utilities, utilities[1:]))

    def test_preview_gradients_diminish(self):
        """Diminishing returns *per byte* across the preview levels.

        (The duration steps are uneven -- 5,10,20,30,40 s -- so per-level
        gains are not monotone, but the utility-size gradients are, which
        is the property the greedy MCKP's optimality argument rests on.)
        """
        ladder = build_audio_ladder()
        gradients = [
            (ladder.utility(level + 1) - ladder.utility(level))
            / (ladder.size(level + 1) - ladder.size(level))
            for level in range(2, 6)
        ]
        assert all(a >= b for a, b in zip(gradients, gradients[1:]))

    def test_custom_spec_durations(self):
        spec = AudioPresentationSpec(preview_durations=(10.0, 20.0))
        ladder = build_audio_ladder(spec)
        assert ladder.max_level == 3

    def test_spec_rejects_unsorted_durations(self):
        with pytest.raises(ValueError):
            AudioPresentationSpec(preview_durations=(10.0, 5.0))

    def test_spec_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            AudioPresentationSpec(preview_durations=(0.0, 5.0))


class TestFixedLevelLadder:
    def test_collapses_to_two_rungs(self):
        full = build_audio_ladder()
        fixed = fixed_level_ladder(full, 3)
        assert fixed.max_level == 1
        assert fixed.size(1) == full.size(3)
        assert fixed.utility(1) == full.utility(3)

    def test_rejects_level_zero_and_out_of_range(self):
        full = build_audio_ladder()
        with pytest.raises(ValueError):
            fixed_level_ladder(full, 0)
        with pytest.raises(ValueError):
            fixed_level_ladder(full, 7)
