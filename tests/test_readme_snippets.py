"""Executable-documentation guard: the README's python snippets must run.

Extracts every fenced ```python block from README.md and executes it in a
fresh namespace, so the front-page examples can never rot.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_examples(self):
        assert len(python_blocks()) >= 2

    @pytest.mark.parametrize(
        "index,block",
        list(enumerate(python_blocks())),
        ids=[f"block{i}" for i in range(len(python_blocks()))],
    )
    def test_snippet_executes(self, index, block, capsys):
        exec(compile(block, f"README.md:python-block-{index}", "exec"), {})
