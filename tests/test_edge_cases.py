"""Focused edge-case tests across modules (determinism, caps, ties)."""

import pytest

from repro.core.mckp import MckpInstance, MckpItem, select_presentations
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import (
    UtilityAnnotations,
    run_experiment,
    sweep_budgets,
)
from repro.experiments.workloads import eval_workload


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


class TestMckpTieBreaking:
    def test_equal_gradients_resolve_deterministically(self):
        """Ties break by item key: same instance -> same solution, always."""
        items = tuple(
            MckpItem(key=key, sizes=(0, 10), profits=(0.0, 1.0))
            for key in (5, 3, 9, 1)
        )
        instance = MckpInstance(items=items, budget=20)  # room for 2 of 4
        first = select_presentations(instance)
        second = select_presentations(instance)
        assert first.levels == second.levels
        chosen = sorted(first.selected_keys())
        assert chosen == [1, 3]  # smallest keys win ties

    def test_zero_size_budget_boundary(self):
        item = MckpItem(key=0, sizes=(0, 10), profits=(0.0, 1.0))
        exact = select_presentations(MckpInstance(items=(item,), budget=10))
        assert exact.levels[0] == 1  # fits exactly


class TestAnnotationsTrainingCap:
    def test_cap_smaller_than_data_still_scores_everything(self, workload):
        annotations = UtilityAnnotations.train(
            workload, seed=1, max_training_samples=200
        )
        assert len(annotations.scores) == len(workload.records)

    def test_scores_depend_on_training_subsample(self, workload):
        small = UtilityAnnotations.train(workload, seed=1, max_training_samples=200)
        large = UtilityAnnotations.train(workload, seed=1, max_training_samples=5000)
        assert small.scores != large.scores


class TestRunnerConveniences:
    def test_run_experiment_trains_when_annotations_missing(self, workload):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=1)
        result = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            config,
            annotations=None,
            user_ids=workload.top_users(2),
        )
        assert result.aggregate.users == 2

    def test_mean_backlog_property(self, workload):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=1)
        result = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            config,
            user_ids=workload.top_users(2),
        )
        assert result.mean_backlog_bytes >= 0.0
        assert result.label == "RichNote"

    def test_sweep_without_annotations(self, workload):
        grid = sweep_budgets(
            workload,
            [MethodSpec(Method.UTIL, 2)],
            (5.0,),
            ExperimentConfig(seed=1),
            annotations=None,
            user_ids=workload.top_users(2),
        )
        assert ("UTIL-L2", 5.0) in grid


class TestSystemDeterminism:
    def test_same_seeds_same_report(self):
        from repro.experiments.system import SystemConfig, SystemSimulation
        from repro.trace.entities import CatalogConfig, generate_catalog
        from repro.trace.generator import TraceConfig
        from repro.trace.socialgraph import SocialGraphConfig, generate_social_graph

        catalog = generate_catalog(
            CatalogConfig(n_users=10, n_artists=8, n_playlists=4, seed=3)
        )
        graph = generate_social_graph(SocialGraphConfig(n_users=10, seed=4))
        trace_config = TraceConfig(duration_hours=12.0, seed=8)

        def run():
            simulation = SystemSimulation(
                catalog,
                graph,
                trace_config,
                SystemConfig(
                    experiment=ExperimentConfig(weekly_budget_mb=10.0, seed=8)
                ),
            )
            report = simulation.run()
            return (
                report.publications,
                len(report.records),
                len(report.deliveries),
                sum(d.utility for d in report.deliveries),
            )

        assert run() == run()
