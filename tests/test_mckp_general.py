"""Tests for MCKP LP-domination preprocessing (general profits)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mckp import (
    MckpInstance,
    MckpItem,
    convex_hull_levels,
    select_presentations,
    select_presentations_general,
    solve_exact_dp,
)


class TestConvexHull:
    def test_monotone_concave_ladder_kept_fully(self):
        item = MckpItem(key=0, sizes=(0, 10, 20, 30), profits=(0.0, 3.0, 5.0, 6.0))
        assert convex_hull_levels(item) == [0, 1, 2, 3]

    def test_dominated_level_dropped(self):
        # Level 2 has more size but less profit than level 1.
        item = MckpItem(key=0, sizes=(0, 10, 20, 30), profits=(0.0, 3.0, 2.0, 6.0))
        assert convex_hull_levels(item) == [0, 1, 3]

    def test_lp_dominated_level_dropped(self):
        # Level 1 sits below the chord from 0 to 2.
        item = MckpItem(key=0, sizes=(0, 10, 20), profits=(0.0, 0.5, 5.0))
        assert convex_hull_levels(item) == [0, 2]

    def test_all_negative_ladder_keeps_only_zero(self):
        item = MckpItem(key=0, sizes=(0, 10, 20), profits=(0.0, -1.0, -2.0))
        assert convex_hull_levels(item) == [0]

    def test_hull_gradients_strictly_decrease(self):
        item = MckpItem(
            key=0,
            sizes=(0, 5, 10, 15, 20, 25),
            profits=(0.0, 1.0, 5.0, 5.5, 9.0, 9.1),
        )
        hull = convex_hull_levels(item)
        gradients = [
            (item.profits[b] - item.profits[a]) / (item.sizes[b] - item.sizes[a])
            for a, b in zip(hull, hull[1:])
        ]
        assert all(x > y for x, y in zip(gradients, gradients[1:]))


class TestGeneralSelection:
    def test_matches_plain_greedy_on_concave_ladders(self):
        items = tuple(
            MckpItem(key=k, sizes=(0, 10, 30), profits=(0.0, 2.0 + k, 3.0 + k))
            for k in range(4)
        )
        instance = MckpInstance(items=items, budget=55)
        plain = select_presentations(instance)
        general = select_presentations_general(instance)
        assert general.levels == plain.levels
        assert general.total_profit == pytest.approx(plain.total_profit)

    def test_recovers_optimum_hidden_behind_dip(self):
        """A NEGATIVE dip at level 1 must not block reaching level 2.

        The plain greedy freezes at a non-positive head gradient; hull
        preprocessing removes the dipped rung so the upgrade to level 2
        becomes a single positive-gradient step.
        """
        item = MckpItem(key=0, sizes=(0, 10, 20), profits=(0.0, -0.1, 5.0))
        instance = MckpInstance(items=(item,), budget=20)
        plain = select_presentations(instance)
        general = select_presentations_general(instance)
        optimum = solve_exact_dp(instance).total_profit
        assert general.total_profit == pytest.approx(optimum)
        # The plain greedy gets stuck at the LP-dominated rung.
        assert plain.total_profit < general.total_profit

    def test_levels_map_back_to_original_indices(self):
        item = MckpItem(key=0, sizes=(0, 10, 20, 30), profits=(0.0, 0.1, 0.2, 9.0))
        instance = MckpInstance(items=(item,), budget=30)
        solution = select_presentations_general(instance)
        assert solution.levels[0] == 3

    @st.composite
    def arbitrary_instances(draw):
        n_items = draw(st.integers(min_value=1, max_value=5))
        items = []
        for key in range(n_items):
            n_levels = draw(st.integers(min_value=1, max_value=4))
            sizes = [0]
            profits = [0.0]
            for _ in range(n_levels):
                sizes.append(sizes[-1] + draw(st.integers(1, 30)))
                profits.append(
                    draw(st.floats(min_value=-2.0, max_value=8.0, allow_nan=False))
                )
            items.append(
                MckpItem(key=key, sizes=tuple(sizes), profits=tuple(profits))
            )
        budget = draw(st.integers(min_value=0, max_value=120))
        return MckpInstance(items=tuple(items), budget=budget)

    @given(arbitrary_instances())
    @settings(max_examples=100, deadline=None)
    def test_general_within_one_hull_upgrade_of_optimum(self, instance):
        """The one-upgrade bound extends to ARBITRARY profits via the hull."""
        general = select_presentations_general(instance)
        optimum = solve_exact_dp(instance).total_profit
        assert general.total_profit <= optimum + 1e-9
        max_hull_gain = 0.0
        for item in instance.items:
            hull = convex_hull_levels(item)
            for a, b in zip(hull, hull[1:]):
                max_hull_gain = max(
                    max_hull_gain, item.profits[b] - item.profits[a]
                )
        assert general.total_profit >= optimum - max_hull_gain - 1e-9

    @given(arbitrary_instances())
    @settings(max_examples=100, deadline=None)
    def test_general_respects_budget(self, instance):
        solution = select_presentations_general(instance)
        total = sum(
            item.sizes[solution.levels[item.key]] for item in instance.items
        )
        assert total <= instance.budget
        assert total == solution.total_size
