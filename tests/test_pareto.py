"""Tests for skyline pruning of presentations (Figure 2a)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.survey.pareto import (
    CandidatePresentation,
    dominates,
    is_useful,
    pareto_frontier,
)


def cand(size, utility):
    return CandidatePresentation(size_bytes=size, utility=utility)


class TestDominance:
    def test_paper_figure_2a_examples(self):
        """A dominates B (same utility, smaller); D dominates same-size B, C."""
        a = cand(100, 2.0)
        b = cand(200, 2.0)
        c = cand(200, 1.5)
        d = cand(200, 3.0)
        assert dominates(a, b)
        assert dominates(d, b)
        assert dominates(d, c)
        assert not dominates(b, a)
        assert not dominates(a, d)  # a smaller but lower utility

    def test_equal_points_do_not_dominate(self):
        assert not dominates(cand(10, 1.0), cand(10, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            cand(-1, 1.0)
        with pytest.raises(ValueError):
            cand(1, -1.0)


class TestFrontier:
    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_single_point(self):
        point = cand(10, 1.0)
        assert pareto_frontier([point]) == [point]

    def test_prunes_dominated(self):
        a, b, c, d = cand(100, 2.0), cand(200, 2.0), cand(200, 1.5), cand(200, 3.0)
        frontier = pareto_frontier([a, b, c, d])
        assert frontier == [a, d]

    def test_frontier_monotone(self):
        points = [cand(s, u) for s, u in ((50, 1.0), (10, 0.5), (80, 2.0), (60, 0.2))]
        frontier = pareto_frontier(points)
        sizes = [p.size_bytes for p in frontier]
        utilities = [p.utility for p in frontier]
        assert sizes == sorted(sizes)
        assert utilities == sorted(utilities)

    def test_duplicates_keep_one(self):
        points = [cand(10, 1.0), cand(10, 1.0)]
        assert len(pareto_frontier(points)) == 1

    def test_is_useful_consistent_with_frontier(self):
        points = [cand(100, 2.0), cand(200, 2.0), cand(150, 2.5)]
        frontier = pareto_frontier(points)
        for point in points:
            assert (point in frontier) == is_useful(point, points)

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 100)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_frontier_properties(self, raw):
        points = [cand(s, float(u)) for s, u in raw]
        frontier = pareto_frontier(points)
        # 1. Nothing on the frontier is dominated by any candidate.
        for kept in frontier:
            assert not any(dominates(other, kept) for other in points)
        # 2. Everything pruned is dominated by (or duplicates) a frontier point.
        for point in points:
            if point not in frontier:
                assert any(
                    dominates(kept, point)
                    or (kept.size_bytes == point.size_bytes
                        and kept.utility == point.utility)
                    for kept in frontier
                )
        # 3. Monotone in both coordinates.
        sizes = [p.size_bytes for p in frontier]
        utilities = [p.utility for p in frontier]
        assert sizes == sorted(sizes)
        assert all(b > a for a, b in zip(utilities, utilities[1:]))
