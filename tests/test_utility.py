"""Tests for the utility models (Eq. 1, learned U_c, aging)."""

import math

import pytest

from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.utility import (
    CombinedUtilityModel,
    ExponentialAging,
    LearnedContentUtility,
    OracleContentUtility,
)


def make_item(content_utility=0.5, clicked=False, created_at=0.0):
    return ContentItem(
        item_id=1,
        user_id=1,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=build_audio_ladder(),
        content_utility=content_utility,
        clicked=clicked,
    )


class TestOracleContentUtility:
    def test_scores_by_ground_truth(self):
        oracle = OracleContentUtility(high=0.9, low=0.1)
        assert oracle.content_utility(make_item(clicked=True)) == 0.9
        assert oracle.content_utility(make_item(clicked=False)) == 0.1

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            OracleContentUtility(high=0.2, low=0.5)


class _StubClassifier:
    """predict_proba returning a fixed clicked-probability."""

    def __init__(self, p):
        self.p = p

    def predict_proba(self, x):
        return [[1 - self.p, self.p] for _ in x]


class _StubFeaturizer:
    def features_for_item(self, item):
        return [0.0]


class TestLearnedContentUtility:
    def test_returns_clicked_probability(self):
        model = LearnedContentUtility(_StubClassifier(0.7), _StubFeaturizer())
        assert model.content_utility(make_item()) == pytest.approx(0.7)

    def test_paper_mapping_equivalence(self):
        """U_c = Pr(x=1) if predicted clicked else 1 - Pr(x=0).

        Both branches equal the clicked-class probability; check at a value
        below and above the 0.5 decision threshold.
        """
        for p in (0.2, 0.8):
            model = LearnedContentUtility(_StubClassifier(p), _StubFeaturizer())
            predicted_clicked = p >= 0.5
            expected = p if predicted_clicked else 1 - (1 - p)
            assert model.content_utility(make_item()) == pytest.approx(expected)

    def test_rejects_out_of_range_probability(self):
        model = LearnedContentUtility(_StubClassifier(1.5), _StubFeaturizer())
        with pytest.raises(ValueError):
            model.content_utility(make_item())

    def test_annotate_batch(self):
        model = LearnedContentUtility(_StubClassifier(0.3), _StubFeaturizer())
        items = [make_item(), make_item()]
        model.annotate(items)
        assert all(item.content_utility == pytest.approx(0.3) for item in items)

    def test_annotate_empty_is_noop(self):
        model = LearnedContentUtility(_StubClassifier(0.3), _StubFeaturizer())
        model.annotate([])  # must not raise


class TestExponentialAging:
    def test_no_decay_at_zero_age(self):
        aging = ExponentialAging(tau_seconds=3600)
        assert aging.decay(0.8, 0.0) == pytest.approx(0.8)

    def test_one_tau_decays_to_1_over_e(self):
        aging = ExponentialAging(tau_seconds=3600)
        assert aging.decay(1.0, 3600.0) == pytest.approx(math.exp(-1))

    def test_negative_age_rejected(self):
        aging = ExponentialAging(tau_seconds=3600)
        with pytest.raises(ValueError):
            aging.decay(1.0, -1.0)

    def test_tau_must_be_positive(self):
        with pytest.raises(ValueError):
            ExponentialAging(tau_seconds=0)


class TestCombinedUtilityModel:
    def test_eq1_product(self):
        model = CombinedUtilityModel()
        item = make_item(content_utility=0.5)
        assert model.utility(item, 6) == pytest.approx(0.5 * 1.0)
        assert model.utility(item, 0) == 0.0

    def test_aging_applied_to_content_component(self):
        model = CombinedUtilityModel(aging=ExponentialAging(tau_seconds=3600))
        item = make_item(content_utility=0.5, created_at=0.0)
        fresh = model.utility(item, 6, now=0.0)
        stale = model.utility(item, 6, now=3600.0)
        assert stale == pytest.approx(fresh * math.exp(-1))

    def test_no_now_skips_aging(self):
        model = CombinedUtilityModel(aging=ExponentialAging(tau_seconds=1.0))
        item = make_item(content_utility=0.5)
        assert model.utility(item, 6) == pytest.approx(0.5)

    def test_ladder_profile(self):
        model = CombinedUtilityModel()
        item = make_item(content_utility=1.0)
        profile = model.utilities_for_ladder(item)
        assert len(profile) == 7
        assert profile[0] == 0.0
        assert profile[-1] == pytest.approx(1.0)
        assert profile == sorted(profile)
