"""Tests for the synthetic social graph."""

import pytest

from repro.trace.socialgraph import (
    SocialGraph,
    SocialGraphConfig,
    generate_social_graph,
)


class TestSocialGraph:
    def test_friendship_is_symmetric(self):
        graph = SocialGraph()
        graph.add_friendship(1, 2, 0.7)
        assert graph.are_friends(1, 2)
        assert graph.are_friends(2, 1)
        assert graph.tie_strength(1, 2) == graph.tie_strength(2, 1) == 0.7

    def test_no_self_friendship(self):
        graph = SocialGraph()
        with pytest.raises(ValueError):
            graph.add_friendship(1, 1)

    def test_tie_strength_bounds(self):
        graph = SocialGraph()
        with pytest.raises(ValueError):
            graph.add_friendship(1, 2, 0.0)
        with pytest.raises(ValueError):
            graph.add_friendship(1, 2, 1.5)

    def test_non_friends_have_zero_strength(self):
        graph = SocialGraph()
        graph.add_user(1)
        graph.add_user(2)
        assert graph.tie_strength(1, 2) == 0.0
        assert not graph.are_friends(1, 2)

    def test_degree_and_counts(self):
        graph = SocialGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(1, 3)
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1
        assert graph.user_count == 3
        assert graph.edge_count == 2

    def test_clustering_coefficient(self):
        graph = SocialGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(1, 3)
        assert graph.clustering_coefficient(1) == 0.0
        graph.add_friendship(2, 3)
        assert graph.clustering_coefficient(1) == 1.0
        assert graph.clustering_coefficient(2) == 1.0

    def test_clustering_of_leaf_is_zero(self):
        graph = SocialGraph()
        graph.add_friendship(1, 2)
        assert graph.clustering_coefficient(2) == 0.0


class TestGeneration:
    def test_all_users_present_and_connected(self):
        config = SocialGraphConfig(n_users=60, seed=1)
        graph = generate_social_graph(config)
        assert graph.user_count == 60
        assert all(graph.degree(u) >= 1 for u in graph.users())

    def test_deterministic_under_seed(self):
        a = generate_social_graph(SocialGraphConfig(n_users=40, seed=2))
        b = generate_social_graph(SocialGraphConfig(n_users=40, seed=2))
        assert a.edges() == b.edges()

    def test_degree_distribution_skewed(self):
        """Preferential attachment: max degree far above the median."""
        graph = generate_social_graph(SocialGraphConfig(n_users=150, seed=3))
        degrees = sorted(graph.degree(u) for u in graph.users())
        median = degrees[len(degrees) // 2]
        assert degrees[-1] >= 2.5 * median

    def test_triadic_closure_raises_clustering(self):
        open_config = SocialGraphConfig(
            n_users=100, closure_rounds=0, closure_probability=0.0, seed=4
        )
        closed_config = SocialGraphConfig(
            n_users=100, closure_rounds=2, closure_probability=0.3, seed=4
        )
        open_graph = generate_social_graph(open_config)
        closed_graph = generate_social_graph(closed_config)

        def mean_clustering(graph):
            users = graph.users()
            return sum(graph.clustering_coefficient(u) for u in users) / len(users)

        assert mean_clustering(closed_graph) > mean_clustering(open_graph)

    def test_tie_strengths_in_range(self):
        graph = generate_social_graph(SocialGraphConfig(n_users=50, seed=5))
        assert all(0.0 < w <= 1.0 for _, _, w in graph.edges())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SocialGraphConfig(n_users=1)
        with pytest.raises(ValueError):
            SocialGraphConfig(attachment_edges=0)
        with pytest.raises(ValueError):
            SocialGraphConfig(closure_probability=1.5)
