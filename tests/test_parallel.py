"""Tests for the one-shot parallel per-user runner (now in ``pool``)."""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.pool import run_experiment_parallel
from repro.experiments.runner import UtilityAnnotations, run_experiment
from repro.experiments.workloads import eval_workload


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=5)


class TestParallelRunner:
    def test_matches_sequential_exactly(self, workload, annotations):
        """Per-user shards are independent: parallel == sequential."""
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=5)
        users = workload.top_users(6)
        sequential = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        parallel = run_experiment_parallel(
            workload,
            MethodSpec(Method.RICHNOTE),
            config,
            annotations,
            users,
            max_workers=2,
        )
        assert parallel.aggregate.row() == pytest.approx(
            sequential.aggregate.row()
        )
        seq_by_user = {o.metrics.user_id: o for o in sequential.per_user}
        for outcome in parallel.per_user:
            twin = seq_by_user[outcome.metrics.user_id]
            assert outcome.metrics.delivered_bytes == twin.metrics.delivered_bytes
            assert outcome.metrics.total_utility == pytest.approx(
                twin.metrics.total_utility
            )
            assert outcome.max_queue_length == twin.max_queue_length

    def test_baseline_policy_parallel(self, workload, annotations):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=5)
        users = workload.top_users(4)
        result = run_experiment_parallel(
            workload,
            MethodSpec(Method.UTIL, fixed_level=3),
            config,
            annotations,
            users,
            max_workers=2,
        )
        assert result.aggregate.users == 4

    def test_no_users_rejected(self, workload, annotations):
        config = ExperimentConfig(seed=5)
        with pytest.raises(ValueError):
            run_experiment_parallel(
                workload,
                MethodSpec(Method.RICHNOTE),
                config,
                annotations,
                user_ids=[10**9],  # nonexistent user
                max_workers=2,
            )
