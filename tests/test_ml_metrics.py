"""Tests for classification metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc,
)


class TestConfusionMatrix:
    def test_counts(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        cm = confusion_matrix(y_true, y_pred)
        assert (cm.true_positive, cm.false_negative) == (2, 1)
        assert (cm.true_negative, cm.false_positive) == (1, 1)
        assert cm.total == 5

    def test_perfect_prediction(self):
        y = [0, 1, 1, 0]
        assert accuracy(y, y) == 1.0
        assert precision(y, y) == 1.0
        assert recall(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_all_wrong(self):
        assert accuracy([0, 1], [1, 0]) == 0.0

    def test_zero_division_conventions(self):
        # No positive predictions -> precision 0; no positives -> recall 0.
        assert precision([1, 1], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])
        with pytest.raises(ValueError):
            confusion_matrix([], [])
        with pytest.raises(ValueError):
            confusion_matrix([0, 2], [0, 1])

    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_accuracy_matches_definition(self, pairs):
        y_true = [a for a, _ in pairs]
        y_pred = [b for _, b in pairs]
        expected = sum(a == b for a, b in pairs) / len(pairs)
        assert accuracy(y_true, y_pred) == pytest.approx(expected)


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_constant_scores_give_half(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.2, 0.8])

    def test_tie_handling_average_rank(self):
        # One tie straddling the classes contributes 0.5.
        auc = roc_auc([0, 1], [0.5, 0.5])
        assert auc == pytest.approx(0.5)

    @given(
        st.lists(
            # Two-decimal grid keeps the transform exactly tie-preserving
            # (denormal floats would collapse distinct scores).
            st.integers(min_value=0, max_value=100).map(lambda v: v / 100.0),
            min_size=4,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_auc_invariant_to_monotone_transform(self, scores):
        labels = [i % 2 for i in range(len(scores))]
        transformed = [s * 10 + 3 for s in scores]
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, transformed)
        )
