"""Tests for richlint, the AST-based domain-invariant analyzer.

Every rule is exercised against a fixture under
``tests/fixtures/richlint/``.  Fixtures carry ``# EXPECT[CODE]`` markers
on exactly the lines that must trip; the harness compares the analyzer's
(line, code) pairs against the markers, so each fixture simultaneously
tests the rule's positives *and* its negatives (any unmarked line that
fires fails the test).
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source, conserves
from repro.analysis.cli import main as richlint_main
from repro.analysis.engine import (
    default_rules,
    load_baseline,
    resolve_selectors,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "richlint"
REPO_ROOT = Path(__file__).parent.parent

EXPECT_RE = re.compile(r"#\s*EXPECT\[([A-Z0-9, ]+)\]")


def expected_markers(path: Path) -> set[tuple[int, str]]:
    marks: set[tuple[int, str]] = set()
    for number, text in enumerate(path.read_text().splitlines(), start=1):
        match = EXPECT_RE.search(text)
        if match:
            for code in match.group(1).split(","):
                marks.add((number, code.strip()))
    return marks


def findings_for(fixture: str) -> set[tuple[int, str]]:
    path = FIXTURES / fixture
    report = analyze_paths([path], root=FIXTURES)
    assert not report.parse_errors
    return {(f.line, f.code) for f in report.findings}


FIXTURE_FILES = [
    "r101_unit_mix.py",
    "r102_bare_literal.py",
    "r201_global_rng.py",
    "r202_unseeded_rng.py",
    "core/r203_wallclock.py",
    "core/r204_set_iteration.py",
    "r205_wallclock_duration.py",
    "r301_float_eq.py",
    "r401_mutable_default.py",
    "r402_unfrozen_key.py",
    "r501_conservation.py",
    "runtime/kernels.py",
    "core/r601_layering.py",
    "r701_blocking_async.py",
    "r702_unawaited_coroutine.py",
    "r703_fire_and_forget.py",
    "r704_sync_lock_await.py",
    "r705_unguarded_state.py",
    "suppressions.py",
]

# Negative fixtures: the flow-aware rules must stay silent on the
# idiomatic version of each anti-pattern.
OK_FIXTURES = [
    "core/channels.py",
    "r701_blocking_async_ok.py",
    "r702_unawaited_coroutine_ok.py",
    "r703_fire_and_forget_ok.py",
    "r704_sync_lock_await_ok.py",
    "r705_unguarded_state_ok.py",
]


class TestRuleFixtures:
    @pytest.mark.parametrize("fixture", FIXTURE_FILES)
    def test_findings_match_expect_markers(self, fixture):
        expected = expected_markers(FIXTURES / fixture)
        assert expected, f"fixture {fixture} has no EXPECT markers"
        assert findings_for(fixture) == expected

    @pytest.mark.parametrize("fixture", OK_FIXTURES)
    def test_ok_fixtures_stay_silent(self, fixture):
        assert not expected_markers(FIXTURES / fixture)
        assert findings_for(fixture) == set()

    def test_every_rule_is_covered_by_a_fixture(self):
        covered = set()
        for fixture in FIXTURE_FILES:
            covered |= {code for _, code in expected_markers(FIXTURES / fixture)}
        assert covered == {rule.code for rule in default_rules()}


class TestScoping:
    WALLCLOCK_SRC = "import time\n\n\ndef f():\n    return time.time()\n"

    def test_wallclock_scoped_to_deterministic_zones(self):
        inside = analyze_source(self.WALLCLOCK_SRC, relpath="core/clock.py")
        assert [f.code for f in inside] == ["RL203"]
        for zone in ("sim", "experiments"):
            assert analyze_source(self.WALLCLOCK_SRC, relpath=f"{zone}/clock.py")

    def test_wallclock_silent_outside_zones(self):
        outside = analyze_source(self.WALLCLOCK_SRC, relpath="trace/clock.py")
        assert outside == []

    def test_wallclock_duration_fires_in_every_zone(self):
        source = (
            "import time\n\n\ndef f():\n"
            "    t0 = time.time()\n"
            "    return time.time() - t0\n"
        )
        for relpath in ("service/server.py", "trace/timer.py", "core/clock.py"):
            codes = [f.code for f in analyze_source(source, relpath)]
            assert "RL205" in codes, relpath

    def test_set_iteration_scoped_to_core(self):
        source = "def f(items: set):\n    return [x for x in items]\n"
        assert [f.code for f in analyze_source(source, "core/hot.py")] == ["RL204"]
        assert analyze_source(source, "ml/cold.py") == []


class TestSuppressions:
    def test_suppressed_findings_carry_reasons(self):
        report = analyze_paths([FIXTURES / "suppressions.py"], root=FIXTURES)
        reasons = [reason for _, reason in report.suppressed]
        assert len(report.suppressed) == 5
        assert any("documented exception" in reason for reason in reasons)
        # The wrong-code line must NOT be suppressed.
        assert [f.code for f in report.findings] == ["RL202"]

    def test_inline_ignore_of_one_code_keeps_other_rules(self):
        source = (
            "import random\n"
            "x = random.Random()  # richlint: ignore[RL202] -- seeded upstream\n"
        )
        assert analyze_source(source) == []
        unrelated = source.replace("RL202", "RL301")
        assert [f.code for f in analyze_source(unrelated)] == ["RL202"]


class TestSelectors:
    def test_family_and_name_selectors_expand(self):
        rules = default_rules()
        assert resolve_selectors(["R2"], rules) == {
            "RL201",
            "RL202",
            "RL203",
            "RL204",
            "RL205",
        }
        assert resolve_selectors(["float-eq"], rules) == {"RL301"}
        assert resolve_selectors(["RL101,R5"], rules) == {"RL101", "RL501"}
        assert resolve_selectors(["R7"], rules) == {
            "RL701",
            "RL702",
            "RL703",
            "RL704",
            "RL705",
        }

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown richlint rule"):
            resolve_selectors(["R99"], default_rules())

    def test_select_and_ignore_filter_rules(self):
        path = FIXTURES / "r201_global_rng.py"
        only_r2 = analyze_paths([path], root=FIXTURES, select="R2")
        assert {f.code for f in only_r2.findings} == {"RL201"}
        none_left = analyze_paths([path], root=FIXTURES, ignore="R2")
        assert none_left.findings == []


class TestBaseline:
    def test_baseline_roundtrip_hides_then_reexposes(self, tmp_path):
        target = tmp_path / "module.py"
        shutil.copy(FIXTURES / "r202_unseeded_rng.py", target)
        baseline = tmp_path / "baseline.json"

        first = analyze_paths([target], root=tmp_path)
        assert first.findings
        write_baseline(baseline, first.findings, first.modules_by_path)
        assert load_baseline(baseline)

        second = analyze_paths([target], root=tmp_path, baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)

        # A new violation is NOT covered by the stale baseline.
        target.write_text(
            target.read_text() + "\n\nimport random\nextra = random.random()\n"
        )
        third = analyze_paths([target], root=tmp_path, baseline=baseline)
        assert [f.code for f in third.findings] == ["RL201"]

    def test_baseline_fingerprints_survive_line_shifts(self, tmp_path):
        target = tmp_path / "module.py"
        shutil.copy(FIXTURES / "r202_unseeded_rng.py", target)
        baseline = tmp_path / "baseline.json"
        first = analyze_paths([target], root=tmp_path)
        write_baseline(baseline, first.findings, first.modules_by_path)

        # Insert lines above: line numbers shift, fingerprints must not.
        target.write_text("# shifted\n# shifted\n" + target.read_text())
        shifted = analyze_paths([target], root=tmp_path, baseline=baseline)
        assert shifted.findings == []
        assert len(shifted.baselined) == len(first.findings)

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="malformed baseline"):
            load_baseline(bad)


class TestCli:
    def test_exit_codes(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert richlint_main([str(dirty), "--no-baseline"]) == 1
        assert richlint_main([str(dirty), "--no-baseline", "--warn-only"]) == 0
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert richlint_main([str(clean), "--no-baseline"]) == 0
        capsys.readouterr()

    def test_update_baseline_then_clean(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert (
            richlint_main(
                [str(dirty), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert richlint_main([str(dirty), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_json_format(self, capsys, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        richlint_main([str(dirty), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "RL201"

    def test_parse_error_reported_and_fails(self, capsys, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert richlint_main([str(broken), "--no-baseline"]) == 1
        assert "RL901" in capsys.readouterr().out

    def test_exclude_glob(self, capsys, tmp_path):
        nested = tmp_path / "skipme"
        nested.mkdir()
        (nested / "dirty.py").write_text("import random\nx = random.random()\n")
        code = richlint_main(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--exclude",
                "skipme/*",
            ]
        )
        assert code == 0
        capsys.readouterr()

    def test_richnote_lint_subcommand_forwards(self, capsys):
        from repro.cli import main as richnote_main

        assert richnote_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL501" in out


class TestOnRealTree:
    """The acceptance gate: the shipped tree is richlint-clean."""

    def test_src_tree_is_clean_with_empty_baseline(self):
        baseline = REPO_ROOT / "richlint-baseline.json"
        assert json.loads(baseline.read_text())["entries"] == []
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro"], root=REPO_ROOT, baseline=baseline
        )
        assert not report.parse_errors
        assert report.findings == []

    def test_columnar_modules_pass_enforcing_families_unbaselined(self):
        """ISSUE 8's new modules are clean under the enforcing R2,R4,R7
        pass with no baseline escape hatch at all."""
        new_modules = [
            REPO_ROOT / "src/repro/runtime/columnar.py",
            REPO_ROOT / "src/repro/experiments/columnar.py",
            REPO_ROOT / "src/repro/experiments/scale.py",
        ]
        for path in new_modules:
            assert path.exists(), path
        report = analyze_paths(
            new_modules, root=REPO_ROOT, select="R2,R4,R7"
        )
        assert not report.parse_errors
        assert report.findings == []

    def test_shard_parallel_modules_clean_on_empty_baseline(self):
        """ISSUE 10's new/changed modules pass EVERY rule family with no
        baseline escape hatch -- not just the scoped R2,R4,R7 pass."""
        modules = [
            REPO_ROOT / "src/repro/runtime/kernels.py",
            REPO_ROOT / "src/repro/runtime/columnar.py",
            REPO_ROOT / "src/repro/experiments/pool.py",
            REPO_ROOT / "src/repro/experiments/scale.py",
            REPO_ROOT / "src/repro/experiments/columnar.py",
            REPO_ROOT / "src/repro/trace/io.py",
            REPO_ROOT / "src/repro/cli.py",
        ]
        for path in modules:
            assert path.exists(), path
        report = analyze_paths(modules, root=REPO_ROOT)
        assert not report.parse_errors
        assert report.findings == []

    def test_module_entry_point_runs_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_delivery_engine_is_marked_conserving(self):
        from repro.core.delivery import DeliveryEngine

        source = (REPO_ROOT / "src/repro/core/delivery.py").read_text()
        assert "@conserves(" in source
        assert DeliveryEngine.deliver_batch  # marker is runtime-inert


class TestConservesMarker:
    def test_bare_and_invariant_forms_are_inert(self):
        @conserves
        def f(x):
            return x + 1

        @conserves("a == b + c")
        def g(x):
            return x * 2

        assert f(1) == 2
        assert g(2) == 4


class TestRegressionsFromRealFindings:
    """Each true positive richlint surfaced in src/ gets a pinned test."""

    def test_calibration_last_bin_closed_regardless_of_edge_rounding(self):
        # richlint RL301 flagged `upper == 1.0` in ml/calibration.py; the
        # fix keys the closing bin on its index.  p == 1.0 must always be
        # binned, including bin counts that make the edge grid inexact.
        import numpy as np

        from repro.ml.calibration import calibration_curve

        for n_bins in (3, 7, 10, 13):
            y = np.array([1, 0, 1, 1])
            p = np.array([1.0, 0.0, 0.5, 1.0])
            bins = calibration_curve(y, p, n_bins=n_bins)
            assert sum(b.count for b in bins) == len(p)
            top = bins[-1]
            assert top.count >= 2  # both p == 1.0 samples landed

    def test_quadratic_drift_bound_tolerance_documented_case(self):
        # The Hypothesis falsifying example that exposed the cancellation
        # error in test_drift_theory's original tolerance.
        from repro.core.lyapunov import quadratic_drift_bound

        q, served, arrived = 523645.0, 0.0, 1.778266177799848e-07
        q_next = max(0.0, q - served + arrived)
        realized = 0.5 * (q_next**2 - q**2)
        bound = quadratic_drift_bound(q, served, arrived)
        assert realized <= bound + 1e-9 * max(1.0, q * q)
