"""Tests for duration-utility curve fitting (Eq. 8-9)."""

import math

import numpy as np
import pytest

from repro.survey.fitting import (
    evaluate_logarithmic,
    evaluate_polynomial,
    fit_logarithmic,
    fit_polynomial,
    select_best_fit,
)


class TestLogarithmicFit:
    def test_recovers_exact_parameters(self):
        durations = [5.0, 10.0, 20.0, 30.0, 40.0]
        utilities = [-0.397 + 0.352 * math.log1p(d) for d in durations]
        fit = fit_logarithmic(durations, utilities)
        a, b = fit.params
        assert a == pytest.approx(-0.397, abs=1e-9)
        assert b == pytest.approx(0.352, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        durations = np.linspace(1, 40, 60)
        utilities = -0.4 + 0.35 * np.log1p(durations) + rng.normal(0, 0.02, 60)
        fit = fit_logarithmic(durations, utilities)
        assert fit.params[1] == pytest.approx(0.35, abs=0.05)
        assert fit.r_squared > 0.95

    def test_evaluate_matches_formula(self):
        assert evaluate_logarithmic((-0.397, 0.352), 10.0) == pytest.approx(
            -0.397 + 0.352 * math.log(11)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_logarithmic([1.0], [0.5])
        with pytest.raises(ValueError):
            fit_logarithmic([-1.0, 2.0], [0.1, 0.2])


class TestPolynomialFit:
    def test_recovers_exact_parameters(self):
        durations = [5.0, 10.0, 20.0, 30.0]
        utilities = [0.253 * (1 - d / 40.0) ** 2.087 for d in durations]
        fit = fit_polynomial(durations, utilities, big_d=40.0)
        a, big_d, b = fit.params
        assert a == pytest.approx(0.253, rel=1e-6)
        assert big_d == 40.0
        assert b == pytest.approx(2.087, rel=1e-6)

    def test_evaluate_matches_formula(self):
        params = (0.253, 40.0, 2.087)
        assert evaluate_polynomial(params, 10.0) == pytest.approx(
            0.253 * 0.75**2.087
        )
        assert evaluate_polynomial(params, 40.0) == 0.0
        assert evaluate_polynomial(params, 50.0) == 0.0

    def test_rejects_points_at_horizon(self):
        with pytest.raises(ValueError):
            fit_polynomial([10.0, 40.0], [0.1, 0.01])

    def test_rejects_nonpositive_utilities(self):
        with pytest.raises(ValueError):
            fit_polynomial([10.0, 20.0], [0.1, 0.0])


class TestModelSelection:
    def test_logarithmic_wins_on_logarithmic_data(self):
        """Mirrors the paper: the log family fits the survey CDF better."""
        durations = [5.0, 10.0, 20.0, 30.0, 39.0]
        utilities = [
            max(1e-6, -0.397 + 0.352 * math.log1p(d)) for d in durations
        ]
        best, other = select_best_fit(durations, utilities)
        assert best.name == "logarithmic"
        assert best.sse <= other.sse

    def test_polynomial_wins_on_polynomial_data(self):
        durations = [5.0, 10.0, 20.0, 30.0]
        utilities = [0.3 * (1 - d / 40.0) ** 2 for d in durations]
        best, _ = select_best_fit(durations, utilities)
        assert best.name == "polynomial"

    def test_fit_result_str(self):
        durations = [5.0, 10.0, 20.0]
        utilities = [0.2, 0.4, 0.6]
        fit = fit_logarithmic(durations, utilities)
        assert "logarithmic" in str(fit)
