"""Multi-channel delivery (ISSUE 9): the Channel abstraction end to end.

Unit layers first (cost curves, latency, registry, ChannelSet), then the
kernel seam (merge_channel_rows), then the runtime contracts: the
single-passthrough configuration must reduce *bit-identically* to the
legacy push-only path, multichannel rounds price energy on wire bytes
while debiting billed bytes per channel, shared cell pools couple users
by service order, correlated cell outages dark whole towers, and the
service layer routes, spills and rate-limits per channel.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.channels import (
    Channel,
    ChannelCostCurve,
    ChannelLatency,
    ChannelSet,
    builtin_channel,
    default_channel_set,
    register_channel,
    registered_channels,
)
from repro.core.content import (
    ContentItem,
    ContentKind,
    Presentation,
    PresentationLadder,
)
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.pubsub.broker import BreakerState, CircuitBreakerConfig
from repro.pubsub.capacity import CellTopology, SharedCellCapacity
from repro.runtime import kernels, registry
from repro.runtime.loop import RoundLoop
from repro.runtime.types import Delivery
from repro.service import (
    DegradationConfig,
    GuardedSink,
    PressureLevel,
    RateLimitConfig,
    SimulatedClock,
    SinkPolicy,
    TieredRateLimiter,
)
from repro.service.degrade import ChannelDegradationLadder
from repro.service.sinks import ChannelSinkRouter
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.faults import (
    CellCorrelatedConnectivity,
    CellOutage,
    CellOutageSchedule,
)
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()


def item(item_id, user_id=1, created_at=0.0, utility=0.8):
    return ContentItem(
        item_id=item_id,
        user_id=user_id,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=LADDER,
        content_utility=utility,
    )


def make_loop(
    user_id=1,
    theta=500_000.0,
    kappa=3_000.0,
    channels=None,
    shared_capacity=None,
):
    return RoundLoop(
        MobileDevice(
            user_id=user_id,
            network=CellularOnlyNetwork(),
            battery=BatteryTrace([BatterySample(0.0, 0.9, charging=True)]),
        ),
        DataBudget(theta_bytes=theta),
        EnergyBudget(kappa_joules=kappa),
        CombinedUtilityModel(),
        policy=registry.create("richnote"),
        channels=channels,
        shared_capacity=shared_capacity,
    )


class TestCostCurve:
    def test_identity_is_the_papers_accounting(self):
        curve = ChannelCostCurve()
        assert curve.is_identity
        assert curve.billed_bytes(12_345) == 12_345

    def test_billed_formula_and_zero_payload(self):
        curve = ChannelCostCurve(per_byte=0.5, overhead_bytes=256)
        assert not curve.is_identity
        assert curve.billed_bytes(600) == 300 + 256
        # Level 0 (not sent) never bills the envelope.
        assert curve.billed_bytes(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelCostCurve(per_byte=-0.1)
        with pytest.raises(ValueError):
            ChannelCostCurve(overhead_bytes=-1)
        with pytest.raises(ValueError):
            ChannelCostCurve().billed_bytes(-1)


class TestLatency:
    def test_base_plus_throughput(self):
        latency = ChannelLatency(base_seconds=2.0, bytes_per_second=1_000.0)
        assert latency.latency_seconds(3_000) == pytest.approx(5.0)
        assert ChannelLatency(base_seconds=0.5).latency_seconds(10**6) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelLatency(base_seconds=-1.0)
        with pytest.raises(ValueError):
            ChannelLatency(bytes_per_second=0.0)


class TestChannel:
    def test_push_is_passthrough(self):
        push = builtin_channel("push")
        assert push.is_passthrough
        assert push.ladder_for(item(1)) is LADDER
        assert push.wire_size(item(1), 2) == LADDER.size(2)
        assert push.billed_size(item(1), 2) == LADDER.size(2)

    def test_ladder_override_reprices_and_rerenders(self):
        inapp = builtin_channel("inapp")
        assert not inapp.is_passthrough
        assert inapp.wire_size(item(1), 1) == 600
        assert inapp.billed_size(item(1), 1) == 300 + 256
        assert inapp.max_level(item(1)) == 2

    def test_utility_uses_channel_ladder_and_decay(self):
        inapp = builtin_channel("inapp")
        model = CombinedUtilityModel(aging=ExponentialAging())
        fresh = inapp.utility(model, item(1, utility=0.8), 1, now=0.0)
        assert fresh == pytest.approx(0.8 * 0.25)
        aged = inapp.utility(model, item(1, utility=0.8), 1, now=6 * 3600.0)
        assert 0.0 < aged < fresh

    def test_passthrough_utility_matches_model(self):
        push = builtin_channel("push")
        model = CombinedUtilityModel()
        it = item(1)
        assert push.utility(model, it, 3, now=100.0) == model.utility(
            it, 3, 100.0
        )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"push", "inapp", "email", "messenger"} <= set(
            registered_channels()
        )
        assert builtin_channel("email").cell_coupled is False
        assert builtin_channel("push").cell_coupled is True

    def test_register_rejects_duplicates_without_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_channel("push", lambda: builtin_channel("push"))

    def test_factory_name_mismatch_rejected(self):
        register_channel(
            "test-mismatch", lambda: builtin_channel("push"), replace=True
        )
        with pytest.raises(ValueError, match="named"):
            builtin_channel("test-mismatch")

    def test_unknown_channel_names_the_registry(self):
        with pytest.raises(KeyError, match="unknown channel"):
            builtin_channel("carrier-pigeon")


class TestChannelSet:
    def test_primary_order_and_lookup(self):
        channels = ChannelSet(
            [builtin_channel("push"), builtin_channel("inapp")]
        )
        assert channels.primary.name == "push"
        assert channels.names == ("push", "inapp")
        assert channels.get("inapp").name == "inapp"
        assert channels.get_or_primary("nope").name == "push"
        assert "inapp" in channels and "email" not in channels
        assert len(channels) == 2

    def test_single_passthrough_detection(self):
        assert default_channel_set().is_single_passthrough
        assert not ChannelSet(
            [builtin_channel("inapp")]
        ).is_single_passthrough
        assert not ChannelSet(
            [builtin_channel("push"), builtin_channel("inapp")]
        ).is_single_passthrough

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ChannelSet([])
        with pytest.raises(ValueError, match="duplicate"):
            ChannelSet([builtin_channel("push"), builtin_channel("push")])
        with pytest.raises(KeyError, match="unknown channel"):
            default_channel_set().get("inapp")


class TestMergeChannelRows:
    def test_merged_row_strictly_increasing_with_backmap(self):
        sizes, profits, backmap = kernels.merge_channel_rows(
            [[0, 200, 1_000], [0, 556]],
            [[0.0, 0.1, 0.9], [0.0, 0.4]],
        )
        assert sizes == [0, 200, 556, 1_000]
        assert profits == [0.0, 0.1, 0.4, 0.9]
        assert backmap == [(0, 0), (0, 1), (1, 1), (0, 2)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_equal_size_tie_keeps_highest_profit(self):
        sizes, profits, backmap = kernels.merge_channel_rows(
            [[0, 500], [0, 500]],
            [[0.0, 0.2], [0.0, 0.7]],
        )
        assert sizes == [0, 500]
        assert profits == [0.0, 0.7]
        assert backmap == [(0, 0), (1, 1)]

    def test_zero_size_choice_is_dropped(self):
        sizes, profits, backmap = kernels.merge_channel_rows(
            [[0, 0, 300]],
            [[0.0, 0.5, 0.8]],
        )
        assert sizes == [0, 300]
        assert backmap == [(0, 0), (0, 2)]


class TestSinglePushParity:
    """The tentpole contract: one passthrough channel == the legacy path."""

    def _run(self, channels):
        loop = make_loop(channels=channels)
        for item_id in range(6):
            loop.enqueue(item(item_id, created_at=item_id * 60.0))
        deliveries = []
        for round_index in range(1, 4):
            result = loop.run_round(
                now=round_index * 900.0, round_seconds=900.0
            )
            deliveries.extend(result.deliveries)
        return loop, deliveries

    def test_default_channel_set_is_bit_identical_to_none(self):
        _, legacy = self._run(channels=None)
        _, single = self._run(channels=default_channel_set())
        assert legacy, "the scenario must actually deliver"
        assert [
            (d.time, d.item.item_id, d.level, d.size_bytes,
             d.energy_joules, d.utility, d.channel)
            for d in legacy
        ] == [
            (d.time, d.item.item_id, d.level, d.size_bytes,
             d.energy_joules, d.utility, d.channel)
            for d in single
        ]
        assert all(d.channel == "push" for d in single)

    def test_single_passthrough_skips_per_channel_ledger(self):
        loop, deliveries = self._run(channels=default_channel_set())
        assert deliveries
        # Identity pricing: total drain equals the wire bytes delivered.
        drained = sum(
            loop.data_budget.per_channel_bytes.values()
        ) or sum(d.size_bytes for d in deliveries)
        assert drained == pytest.approx(
            sum(d.size_bytes for d in deliveries)
        )


class TestMultichannelLoop:
    CHANNELS = ChannelSet([builtin_channel("push"), builtin_channel("inapp")])

    def _run(self, theta=2_000.0, rounds=3, items=5):
        loop = make_loop(theta=theta, channels=self.CHANNELS)
        for item_id in range(items):
            loop.enqueue(item(item_id))
        deliveries = []
        for round_index in range(1, rounds + 1):
            result = loop.run_round(
                now=round_index * 900.0, round_seconds=900.0
            )
            deliveries.extend(result.deliveries)
        return loop, deliveries

    def test_joint_selection_routes_over_both_channels(self):
        loop, deliveries = self._run()
        assert deliveries
        names = {d.channel for d in deliveries}
        assert names <= {"push", "inapp"}
        # The in-app card (0.25 utility for 556 billed bytes) dominates
        # the 200-byte push metadata (0.01 utility) on the merged hull.
        assert "inapp" in names

    def test_wire_vs_billed_accounting(self):
        loop, deliveries = self._run()
        billed = {}
        for d in deliveries:
            channel = self.CHANNELS.get(d.channel)
            assert d.size_bytes == channel.wire_size(d.item, d.level)
            billed[d.channel] = billed.get(d.channel, 0.0) + channel.cost.billed_bytes(d.size_bytes)
        for name, total in billed.items():
            assert loop.data_budget.per_channel_bytes[name] == pytest.approx(
                total
            )

    def test_selection_respects_budget_in_billed_bytes(self):
        # One round, budget below the cheapest inapp card but above the
        # push metadata: only push choices are affordable.
        loop = make_loop(theta=400.0, channels=self.CHANNELS)
        for item_id in range(3):
            loop.enqueue(item(item_id))
        result = loop.run_round(now=900.0, round_seconds=900.0)
        assert all(d.channel == "push" for d in result.deliveries)


class TestSharedCapacityCoupling:
    def test_first_user_drains_pool_for_the_second(self):
        topology = CellTopology(cell_of={1: 0, 2: 0})
        pool = SharedCellCapacity(topology, bytes_per_round=250_000.0)
        loops = {
            user_id: make_loop(user_id=user_id, shared_capacity=pool)
            for user_id in (1, 2)
        }
        for user_id, loop in loops.items():
            for item_id in range(4):
                loop.enqueue(item(item_id, user_id=user_id))
        pool.begin_round()
        first = loops[1].run_round(now=900.0, round_seconds=900.0)
        second = loops[2].run_round(now=900.0, round_seconds=900.0)
        first_bytes = sum(d.size_bytes for d in first.deliveries)
        second_bytes = sum(d.size_bytes for d in second.deliveries)
        assert first_bytes > 0
        # User 1 ran first and drained the tower; user 2's grant clamps.
        assert second_bytes < first_bytes
        stats = pool.stats[0]
        assert stats.consumed_bytes <= stats.granted_bytes
        assert stats.granted_bytes <= stats.requested_bytes
        assert stats.contended_grants >= 1
        assert stats.denied_bytes > 0

    def test_begin_round_refills(self):
        topology = CellTopology(cell_of={1: 0})
        pool = SharedCellCapacity(topology, bytes_per_round=1_000.0)
        assert pool.grant(1, 800.0) == 800.0
        pool.consume(1, 800.0)
        assert pool.remaining(0) == pytest.approx(200.0)
        pool.begin_round()
        assert pool.remaining(0) == pytest.approx(1_000.0)

    def test_uncoupled_cells_do_not_interact(self):
        topology = CellTopology(cell_of={1: 0, 2: 1})
        pool = SharedCellCapacity(topology, bytes_per_round=1_000.0)
        pool.consume(1, 1_000.0)
        assert pool.grant(2, 600.0) == 600.0


class TestCellOutage:
    def test_whole_cell_goes_dark_together(self):
        schedule = CellOutageSchedule(
            [CellOutage(cell=0, first_round=1, rounds=1)]
        )
        connected = {}
        for user_id in (1, 2):
            loop = RoundLoop(
                MobileDevice(
                    user_id=user_id,
                    network=CellCorrelatedConnectivity(
                        CellularOnlyNetwork(), cell=0, schedule=schedule
                    ),
                    battery=BatteryTrace(
                        [BatterySample(0.0, 0.9, charging=True)]
                    ),
                ),
                DataBudget(theta_bytes=500_000.0),
                EnergyBudget(kappa_joules=3_000.0),
                CombinedUtilityModel(),
                policy=registry.create("richnote"),
            )
            loop.enqueue(item(1, user_id=user_id))
            connected[user_id] = [
                loop.run_round(now=k * 900.0, round_seconds=900.0).connected
                for k in range(1, 4)
            ]
        assert connected[1] == [True, False, True]
        assert connected[2] == [True, False, True]

    def test_other_cells_unaffected(self):
        schedule = CellOutageSchedule(
            [CellOutage(cell=0, first_round=0, rounds=10)]
        )
        network = CellCorrelatedConnectivity(
            CellularOnlyNetwork(), cell=1, schedule=schedule
        )
        network.step()
        assert network.connected


def _delivery(item_id=0, channel="push"):
    return Delivery(
        time=0.0,
        user_id=1,
        item=item(item_id),
        level=1,
        size_bytes=1_000,
        energy_joules=1.0,
        utility=0.5,
        channel=channel,
    )


def _drive(clock, awaitable):
    return asyncio.run(clock.drive(awaitable))


class TestChannelSinkRouter:
    def _router(self, clock, behaviours, spill=None):
        router = ChannelSinkRouter(spill=spill)
        for name, sink in behaviours.items():
            router.register(
                name,
                GuardedSink(
                    sink,
                    clock=clock,
                    rng=random.Random(3),
                    policy=SinkPolicy(max_attempts=1),
                    breaker=CircuitBreakerConfig(failure_threshold=1),
                    name=name,
                ),
            )
        return router

    def test_routes_by_delivery_channel(self):
        clock = SimulatedClock()
        seen = {"push": [], "inapp": []}
        router = self._router(
            clock,
            {
                "push": lambda d: seen["push"].append(d),
                "inapp": lambda d: seen["inapp"].append(d),
            },
        )
        assert _drive(clock, router.deliver(_delivery(1, "inapp")))
        assert _drive(clock, router.deliver(_delivery(2, "push")))
        assert [d.item.item_id for d in seen["inapp"]] == [1]
        assert [d.item.item_id for d in seen["push"]] == [2]
        assert router.router_stats.routed == {"push": 1, "inapp": 1}

    def test_failed_channel_spills_to_relief_channel(self):
        clock = SimulatedClock()
        landed = []

        def down(_delivery):
            raise RuntimeError("push gateway down")

        router = self._router(
            clock,
            {"push": down, "inapp": landed.append},
            spill={"push": "inapp"},
        )
        assert _drive(clock, router.deliver(_delivery(7, "push")))
        assert len(landed) == 1
        assert router.router_stats.spilled == {"push->inapp": 1}

    def test_unroutable_and_duplicate_registration(self):
        clock = SimulatedClock()
        router = self._router(clock, {"push": lambda d: None})
        assert not _drive(clock, router.deliver(_delivery(1, "email")))
        assert router.router_stats.unroutable == 1
        with pytest.raises(ValueError, match="already"):
            router.register(
                "push",
                GuardedSink(
                    lambda d: None, clock=clock, rng=random.Random(3)
                ),
            )

    def test_breaker_state_is_most_severe(self):
        clock = SimulatedClock()

        def down(_delivery):
            raise RuntimeError("down")

        router = self._router(
            clock, {"push": down, "inapp": lambda d: None}
        )
        assert router.breaker_state is BreakerState.CLOSED
        _drive(clock, router.deliver(_delivery(1, "push")))
        assert router.sink_for("push").breaker_state is BreakerState.OPEN
        assert router.breaker_state is BreakerState.OPEN
        # Aggregate stats sum the members.
        assert router.stats.failures == 1


class TestChannelDegradationLadder:
    CONFIG = DegradationConfig()

    def _ladder(self):
        return ChannelDegradationLadder(
            ["push", "inapp"], config=self.CONFIG, spill={"push": "inapp"}
        )

    def test_pressured_push_spills_to_calm_inapp(self):
        ladder = self._ladder()
        ladder.update("push", now=0.0, occupancy=0.95)
        ladder.update("inapp", now=0.0, occupancy=0.1)
        assert ladder.level("push") is PressureLevel.SHED
        assert ladder.route("push") == "inapp"
        # Shedding is decided post-routing: the relief channel is calm.
        assert not ladder.sheds_ingest("push")

    def test_no_spill_onto_equally_pressured_channel(self):
        ladder = self._ladder()
        ladder.update("push", now=0.0, occupancy=0.95)
        ladder.update("inapp", now=0.0, occupancy=0.95)
        assert ladder.route("push") == "push"
        assert ladder.sheds_ingest("push")

    def test_calm_channel_does_not_route_away(self):
        ladder = self._ladder()
        ladder.update("push", now=0.0, occupancy=0.1)
        ladder.update("inapp", now=0.0, occupancy=0.0)
        assert ladder.route("push") == "push"

    def test_spill_edges_validated(self):
        with pytest.raises(ValueError):
            ChannelDegradationLadder(
                ["push"], spill={"push": "carrier-pigeon"}
            )
        with pytest.raises(ValueError):
            ChannelDegradationLadder([])


class TestPerChannelRateLimit:
    def test_channel_tier_engages_only_when_configured(self):
        limiter = TieredRateLimiter(
            RateLimitConfig(per_channel_rate=1.0, per_channel_burst=1.0)
        )
        assert limiter.allow(
            0.0, user_id=1, kind="friend", channel="push"
        ).allowed
        denied = limiter.allow(0.0, user_id=2, kind="friend", channel="push")
        assert not denied.allowed
        assert denied.tier == "channel"
        # A different channel has its own bucket.
        assert limiter.allow(
            0.0, user_id=3, kind="friend", channel="inapp"
        ).allowed
        assert limiter.denials["channel"] == 1

    def test_no_channel_argument_bypasses_the_tier(self):
        limiter = TieredRateLimiter(
            RateLimitConfig(per_channel_rate=1.0, per_channel_burst=1.0)
        )
        for user_id in range(5):
            assert limiter.allow(0.0, user_id=user_id, kind="friend").allowed
        assert limiter.denials["channel"] == 0


class TestColumnarChannelCodes:
    def _engine(self, channels):
        from repro.experiments.columnar import build_cohort
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import (
            UtilityAnnotations,
            _device_stream_seed,
        )
        from repro.runtime.columnar import (
            ColumnarEngine,
            build_device_columns,
            round_times,
        )
        from repro.trace.generator import TraceConfig, iter_users

        trace = TraceConfig(seed=31, duration_hours=24.0)
        pairs = [(u, r) for u, r in iter_users(12, trace) if r]
        annotations = UtilityAnnotations(
            scores={
                r.notification_id: (0.9 if r.clicked else 0.1)
                for _, rs in pairs
                for r in rs
            }
        )
        config = ExperimentConfig(seed=31)
        duration = trace.duration_hours * 3600.0
        columns = build_cohort(
            pairs, annotations, build_audio_ladder(config.presentation_spec)
        )
        times = round_times(config.round_seconds, duration)
        device = build_device_columns(
            [_device_stream_seed(config.seed, u) for u in columns.user_ids],
            times,
            config.round_seconds,
            duration,
            config.kappa_joules_per_round,
        )
        return ColumnarEngine(
            columns.cohort,
            device,
            registry.create("richnote"),
            theta_bytes=config.theta_bytes_per_round,
            kappa_joules=config.kappa_joules_per_round,
            round_seconds=config.round_seconds,
            duration_seconds=duration,
            channels=channels,
        )

    def test_legacy_path_emits_all_push_codes(self):
        result = self._engine(channels=None).run()
        assert result.channel_names == ("push",)
        assert result.channel_codes is not None
        for codes, deliveries in zip(
            result.channel_codes, result.deliveries
        ):
            assert len(codes) == len(deliveries)
            assert all(code == 0 for code in codes)

    def test_multichannel_codes_index_the_channel_names(self):
        channels = ChannelSet(
            [builtin_channel("push"), builtin_channel("inapp")]
        )
        result = self._engine(channels=channels).run()
        assert result.channel_names == ("push", "inapp")
        flat = [
            code for codes in result.channel_codes for code in codes
        ]
        assert flat, "the cohort must deliver something"
        assert set(flat) <= {0, 1}
        assert 1 in flat, "joint selection should route onto in-app"
