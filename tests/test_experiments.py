"""Tests for the experiment configuration, adapters and metrics."""

import pytest

from repro.core.content import ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import Delivery
from repro.experiments.adapters import record_to_item
from repro.experiments.config import (
    HOURS_PER_WEEK,
    ExperimentConfig,
    Method,
    MethodSpec,
    NetworkMode,
)
from repro.experiments.metrics import aggregate, compute_user_metrics
from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord

LADDER = build_audio_ladder()


def record(notification_id=1, clicked=False, click_time=None, timestamp=0.0):
    return NotificationRecord(
        notification_id=notification_id,
        recipient_id=1,
        sender_id=2,
        kind=TopicKind.FRIEND,
        track_id=1,
        album_id=1,
        artist_id=1,
        track_popularity=50,
        album_popularity=50,
        artist_popularity=50,
        tie_strength=0.5,
        is_friend=True,
        favorite_genre=False,
        timestamp=timestamp,
        hovered=clicked,
        clicked=clicked,
        click_time=click_time,
    )


def delivery(item, time=100.0, level=1, utility=0.1):
    return Delivery(
        time=time,
        user_id=1,
        item=item,
        level=level,
        size_bytes=item.ladder.size(level),
        energy_joules=1.0,
        utility=utility,
    )


class TestExperimentConfig:
    def test_theta_conversion(self):
        config = ExperimentConfig(weekly_budget_mb=16.8, round_seconds=3600.0)
        assert config.theta_bytes_per_round == pytest.approx(
            16.8e6 / HOURS_PER_WEEK
        )

    def test_with_budget_and_v_copies(self):
        config = ExperimentConfig()
        other = config.with_budget(50.0)
        assert other.weekly_budget_mb == 50.0
        assert other.round_seconds == config.round_seconds
        assert config.with_v(10.0).lyapunov_v == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(weekly_budget_mb=0)
        with pytest.raises(ValueError):
            ExperimentConfig(round_seconds=0)
        with pytest.raises(ValueError):
            ExperimentConfig(lyapunov_v=-1)

    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.round_seconds == 3600.0
        assert config.kappa_joules_per_round == 3000.0
        assert config.lyapunov_v == 1000.0
        assert config.network_mode is NetworkMode.CELL_ONLY


class TestMethodSpec:
    def test_richnote_must_not_fix_level(self):
        with pytest.raises(ValueError):
            MethodSpec(Method.RICHNOTE, fixed_level=3)

    def test_baselines_need_level(self):
        with pytest.raises(ValueError):
            MethodSpec(Method.FIFO)
        with pytest.raises(ValueError):
            MethodSpec(Method.UTIL, fixed_level=0)

    def test_labels(self):
        assert MethodSpec(Method.RICHNOTE).label == "RichNote"
        assert MethodSpec(Method.FIFO, 3).label == "FIFO-L3"
        assert MethodSpec(Method.UTIL, 2).label == "UTIL-L2"


class TestAdapters:
    def test_record_to_item_copies_labels_and_features(self):
        r = record(clicked=True, click_time=500.0, timestamp=100.0)
        item = record_to_item(r, LADDER)
        assert item.item_id == r.notification_id
        assert item.user_id == r.recipient_id
        assert item.kind is ContentKind.FRIEND_FEED
        assert item.created_at == 100.0
        assert item.clicked
        assert item.click_time == 500.0
        assert item.metadata["tie_strength"] == 0.5


class TestUserMetrics:
    def test_delivery_ratio_and_precision_recall(self):
        records = [
            record(1, clicked=True, click_time=200.0),
            record(2, clicked=True, click_time=50.0),
            record(3),
        ]
        items = {r.notification_id: record_to_item(r, LADDER) for r in records}
        deliveries = [
            delivery(items[1], time=100.0),  # delivered before click: hit
            delivery(items[2], time=100.0),  # delivered after click: miss
        ]
        metrics = compute_user_metrics(1, records, deliveries)
        assert metrics.delivery_ratio == pytest.approx(2 / 3)
        assert metrics.clicked_total == 2
        assert metrics.clicked_delivered_in_time == 1
        assert metrics.precision == pytest.approx(1 / 2)
        assert metrics.recall == pytest.approx(1 / 2)

    def test_queuing_delay_mean(self):
        records = [record(1, timestamp=100.0), record(2, timestamp=200.0)]
        items = {r.notification_id: record_to_item(r, LADDER) for r in records}
        deliveries = [
            delivery(items[1], time=400.0),
            delivery(items[2], time=400.0),
        ]
        metrics = compute_user_metrics(1, records, deliveries)
        assert metrics.mean_queuing_delay_s == pytest.approx((300 + 200) / 2)

    def test_zero_divisions_guarded(self):
        metrics = compute_user_metrics(1, [record(1)], [])
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.average_utility == 0.0
        assert metrics.delivery_ratio == 0.0

    def test_level_histogram(self):
        records = [record(1), record(2)]
        items = {r.notification_id: record_to_item(r, LADDER) for r in records}
        deliveries = [
            delivery(items[1], level=1),
            delivery(items[2], level=3),
        ]
        metrics = compute_user_metrics(1, records, deliveries)
        assert metrics.level_histogram == {1: 1, 3: 1}


class TestAggregate:
    def test_ratio_metrics_averaged_volume_metrics_summed(self):
        records_a = [record(1, clicked=True, click_time=500.0)]
        records_b = [record(2), record(3)]
        items = {
            i: record_to_item(record(i), LADDER) for i in (1, 2, 3)
        }
        user_a = compute_user_metrics(1, records_a, [delivery(items[1], utility=0.4)])
        user_b = compute_user_metrics(2, records_b, [delivery(items[2], utility=0.2)])
        agg = aggregate([user_a, user_b])
        assert agg.users == 2
        assert agg.delivery_ratio == pytest.approx((1.0 + 0.5) / 2)
        assert agg.total_utility == pytest.approx(0.6)

    def test_level_mix_normalized(self):
        records = [record(1), record(2)]
        items = {r.notification_id: record_to_item(r, LADDER) for r in records}
        user = compute_user_metrics(
            1, records, [delivery(items[1], level=1), delivery(items[2], level=2)]
        )
        agg = aggregate([user])
        assert agg.level_mix == {1: 0.5, 2: 0.5}

    def test_empty_aggregation_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])
