"""Tests for the logistic-regression baseline classifier."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegressionClassifier


def logistic_data(n=600, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    logit = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5
    if noise:
        logit = logit + rng.normal(0, noise, size=n)
    p = 1 / (1 + np.exp(-logit))
    y = (rng.uniform(size=n) < p).astype(int)
    return x, y


class TestValidation:
    def test_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(n_iterations=0)
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(l2=-1)

    def test_inputs(self):
        model = LogisticRegressionClassifier()
        with pytest.raises(ValueError):
            model.fit([[1.0], [2.0]], [0, 2])
        with pytest.raises(ValueError):
            model.fit([[1.0]], [0, 1])
        with pytest.raises(RuntimeError):
            model.predict([[1.0]])

    def test_predict_wrong_width(self):
        model = LogisticRegressionClassifier().fit([[1.0], [-1.0]], [1, 0])
        with pytest.raises(ValueError):
            model.predict([[1.0, 2.0]])


class TestLearning:
    def test_recovers_separating_direction(self):
        x, y = logistic_data()
        model = LogisticRegressionClassifier(n_iterations=500).fit(x, y)
        weights = model.coefficients
        assert weights[0] > 0 > weights[1]
        assert abs(weights[0]) > abs(weights[2])

    def test_accuracy_near_bayes_optimal(self):
        """Label sampling caps accuracy at the Bayes rate (~0.79 here)."""
        x, y = logistic_data()
        logit = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5
        bayes_accuracy = ((logit >= 0).astype(int) == y).mean()
        model = LogisticRegressionClassifier(n_iterations=500).fit(x, y)
        assert (model.predict(x) == y).mean() >= bayes_accuracy - 0.02

    def test_probabilities_valid_and_calibratedish(self):
        x, y = logistic_data(n=2000, seed=1)
        model = LogisticRegressionClassifier(n_iterations=400).fit(x, y)
        proba = model.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()
        # Mean predicted probability tracks the base rate.
        assert proba[:, 1].mean() == pytest.approx(y.mean(), abs=0.05)

    def test_constant_feature_handled(self):
        x, y = logistic_data(n=200, seed=2)
        x = np.column_stack([x, np.ones(len(x))])  # zero-variance column
        model = LogisticRegressionClassifier().fit(x, y)
        assert np.isfinite(model.coefficients).all()

    def test_l2_shrinks_weights(self):
        x, y = logistic_data(n=400, seed=3)
        loose = LogisticRegressionClassifier(l2=0.0, n_iterations=400).fit(x, y)
        tight = LogisticRegressionClassifier(l2=1.0, n_iterations=400).fit(x, y)
        assert np.abs(tight.coefficients).sum() < np.abs(loose.coefficients).sum()

    def test_without_standardization(self):
        x, y = logistic_data(n=400, seed=4)
        model = LogisticRegressionClassifier(
            standardize=False, learning_rate=0.1, n_iterations=800
        ).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.8

    def test_drop_in_for_cross_validation(self):
        """Same interface as the forest: works in the CV harness."""
        from repro.ml.crossval import cross_validate

        x, y = logistic_data(n=300, seed=5)
        result = cross_validate(
            lambda: LogisticRegressionClassifier(n_iterations=200),
            x, y, n_folds=5, random_state=0,
        )
        assert result.accuracy > 0.8

    def test_forest_beats_logistic_on_interaction_data(self):
        """XOR-style interactions: the RF's raison d'etre over the LR."""
        from repro.ml.forest import RandomForestClassifier

        rng = np.random.default_rng(6)
        x = rng.uniform(-1, 1, size=(800, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        logistic = LogisticRegressionClassifier(n_iterations=400).fit(x, y)
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=4, random_state=0
        ).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.9
        assert (logistic.predict(x) == y).mean() < 0.65
