"""Tests for the scheduler's hull-preprocessed selector option."""

import random

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()
ROUND = 3600.0


def make_scheduler(use_hull, theta=300_000.0):
    device = MobileDevice(
        user_id=1,
        network=CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
    )
    return RichNoteScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
        use_hull_selector=use_hull,
    )


def drive(scheduler, seed=0, rounds=20, arrivals_per_round=3):
    rng = random.Random(seed)
    log = []
    for round_index in range(1, rounds + 1):
        now = round_index * ROUND
        for offset in range(arrivals_per_round):
            scheduler.enqueue(
                ContentItem(
                    item_id=round_index * 100 + offset,
                    user_id=1,
                    kind=ContentKind.FRIEND_FEED,
                    created_at=now - 1.0,
                    ladder=LADDER,
                    content_utility=rng.random(),
                )
            )
        result = scheduler.run_round(now, ROUND)
        log.extend((d.item.item_id, d.level) for d in result.deliveries)
    return log


class TestHullSelectorOption:
    def test_identical_selections_on_standard_ladders(self):
        """The audio ladder is gradient-monotone: both selectors agree."""
        plain = drive(make_scheduler(use_hull=False), seed=4)
        hull = drive(make_scheduler(use_hull=True), seed=4)
        assert plain == hull

    def test_hull_selector_runs_under_energy_pressure(self):
        """Deep energy deficit makes adjusted profiles dip; hull mode must
        still select without error and deliver something affordable."""
        device = MobileDevice(
            user_id=1,
            network=CellularOnlyNetwork(),
            battery=BatteryTrace(
                [BatterySample(0.0, 0.03, charging=False)]  # nearly dead
            ),
        )
        scheduler = RichNoteScheduler(
            device=device,
            data_budget=DataBudget(theta_bytes=2_000_000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0, initial_joules=0.0),
            use_hull_selector=True,
        )
        log = drive(scheduler, seed=5, rounds=10)
        assert log  # still delivers despite P(t) = 0
