"""Tests for the topic-based pub/sub substrate."""

import pytest

from repro.pubsub.broker import Broker, DeliveryMode
from repro.pubsub.matching import TopicMatcher
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind


def pub(topic, publisher=0, timestamp=1.0, **payload):
    return Publication(
        topic=topic, publisher_id=publisher, timestamp=timestamp, payload=payload
    )


class TestTopics:
    def test_topic_identity(self):
        assert Topic(TopicKind.FRIEND, 3) == Topic(TopicKind.FRIEND, 3)
        assert Topic(TopicKind.FRIEND, 3) != Topic(TopicKind.ARTIST, 3)

    def test_negative_entity_rejected(self):
        with pytest.raises(ValueError):
            Topic(TopicKind.ARTIST, -1)

    def test_publication_timestamp_validated(self):
        with pytest.raises(ValueError):
            Publication(Topic(TopicKind.FRIEND, 1), 0, -1.0)


class TestSubscriptionStore:
    def test_subscribe_and_lookup(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 5)
        assert store.subscribe(1, topic)
        assert not store.subscribe(1, topic)  # duplicate
        assert store.subscribers(topic) == {1}
        assert store.topics_of(1) == {topic}
        assert store.total_subscriptions == 1

    def test_unsubscribe(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 5)
        store.subscribe(1, topic)
        assert store.unsubscribe(1, topic)
        assert not store.unsubscribe(1, topic)
        assert store.subscribers(topic) == frozenset()
        assert store.total_subscriptions == 0

    def test_topics_of_kind(self):
        store = SubscriptionStore()
        store.subscribe(1, Topic(TopicKind.ARTIST, 5))
        store.subscribe(1, Topic(TopicKind.FRIEND, 2))
        assert store.topics_of_kind(1, TopicKind.ARTIST) == {
            Topic(TopicKind.ARTIST, 5)
        }

    def test_bulk_subscribe_counts_new_only(self):
        store = SubscriptionStore()
        topics = [Topic(TopicKind.PLAYLIST, i) for i in range(3)]
        assert store.bulk_subscribe(1, topics) == 3
        assert store.bulk_subscribe(1, topics) == 0

    def test_negative_user_rejected(self):
        with pytest.raises(ValueError):
            SubscriptionStore().subscribe(-1, Topic(TopicKind.FRIEND, 1))


class TestMatching:
    def test_matches_subscribers(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.FRIEND, 9)
        store.subscribe(1, topic)
        store.subscribe(2, topic)
        matcher = TopicMatcher(store)
        assert matcher.match(pub(topic, publisher=9)) == {1, 2}

    def test_publisher_never_self_notified(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.PLAYLIST, 4)
        store.subscribe(7, topic)  # owner follows their own playlist
        matcher = TopicMatcher(store)
        assert matcher.match(pub(topic, publisher=7)) == frozenset()

    def test_filters_applied(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.FRIEND, 9)
        store.subscribe(1, topic)
        store.subscribe(2, topic)
        matcher = TopicMatcher(store)
        matcher.add_filter(lambda user, publication: user != 2)
        assert matcher.match(pub(topic, publisher=9)) == {1}


class TestBroker:
    def test_round_mode_queues_until_flush(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        store.subscribe(5, topic)
        broker = Broker(store, default_mode=DeliveryMode.ROUND)
        received = []
        broker.add_sink(received.append)
        broker.publish(pub(topic))
        assert received == []
        assert broker.pending_count == 1
        released = broker.flush()
        assert len(released) == 1
        assert received == released
        assert broker.pending_count == 0

    def test_realtime_mode_emits_immediately(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.FRIEND, 1)
        store.subscribe(5, topic)
        broker = Broker(store, default_mode=DeliveryMode.REALTIME)
        received = []
        broker.add_sink(received.append)
        broker.publish(pub(topic))
        assert len(received) == 1
        assert broker.pending_count == 0

    def test_per_kind_mode_override(self):
        """Friend feeds realtime, album releases round-based (Section II)."""
        store = SubscriptionStore()
        friend_topic = Topic(TopicKind.FRIEND, 1)
        artist_topic = Topic(TopicKind.ARTIST, 1)
        store.subscribe(5, friend_topic)
        store.subscribe(5, artist_topic)
        broker = Broker(
            store,
            default_mode=DeliveryMode.ROUND,
            mode_overrides={TopicKind.FRIEND: DeliveryMode.REALTIME},
        )
        received = []
        broker.add_sink(received.append)
        broker.publish(pub(friend_topic))
        broker.publish(pub(artist_topic))
        assert len(received) == 1
        assert broker.pending_count == 1

    def test_no_subscribers_counts_drop(self):
        broker = Broker()
        out = broker.publish(pub(Topic(TopicKind.ARTIST, 1)))
        assert out == []
        assert broker.stats.dropped_no_subscribers == 1

    def test_stats_per_kind(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.PLAYLIST, 2)
        store.subscribe(1, topic)
        store.subscribe(2, topic)
        broker = Broker(store)
        broker.publish(pub(topic, publisher=99))
        assert broker.stats.publications == 1
        assert broker.stats.notifications == 2
        assert broker.stats.per_kind[TopicKind.PLAYLIST] == 2

    def test_notification_ids_unique_and_ordered(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        for user in range(5):
            store.subscribe(user, topic)
        broker = Broker(store)
        notifications = broker.publish(pub(topic, publisher=77))
        ids = [n.notification_id for n in notifications]
        assert ids == sorted(set(ids))
