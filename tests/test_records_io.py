"""Tests for trace records and JSONL serialization."""

import pytest

from repro.pubsub.topics import TopicKind
from repro.trace.io import iter_trace, read_trace, write_trace
from repro.trace.records import NotificationRecord


def record(**overrides):
    base = dict(
        notification_id=1,
        recipient_id=2,
        sender_id=3,
        kind=TopicKind.FRIEND,
        track_id=4,
        album_id=5,
        artist_id=6,
        track_popularity=70,
        album_popularity=65,
        artist_popularity=80,
        tie_strength=0.4,
        is_friend=True,
        favorite_genre=False,
        timestamp=1000.0,
        hovered=True,
        clicked=True,
        click_time=1600.0,
    )
    base.update(overrides)
    return NotificationRecord(**base)


class TestRecordInvariants:
    def test_click_implies_hover(self):
        with pytest.raises(ValueError):
            record(hovered=False, clicked=True)

    def test_click_needs_click_time(self):
        with pytest.raises(ValueError):
            record(clicked=True, click_time=None)

    def test_click_cannot_precede_notification(self):
        with pytest.raises(ValueError):
            record(click_time=999.0)

    def test_attended_property(self):
        assert record().attended
        assert not record(hovered=False, clicked=False, click_time=None).attended

    def test_time_features(self):
        # Epoch starts Monday 00:00; 1000 s in = hour 0.27..., weekday.
        r = record(timestamp=1000.0, click_time=2000.0)
        assert r.hour_of_day() == pytest.approx(1000.0 / 3600.0)
        assert not r.is_weekend()
        assert r.is_night()
        saturday = record(timestamp=5.2 * 86400.0, click_time=5.3 * 86400.0)
        assert saturday.is_weekend()

    def test_dict_round_trip(self):
        r = record()
        assert NotificationRecord.from_dict(r.to_dict()) == r


class TestTraceIo:
    def test_round_trip(self, tmp_path):
        records = [
            record(notification_id=i, clicked=False, click_time=None)
            for i in range(5)
        ]
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, records) == 5
        loaded = read_trace(path)
        assert loaded == records

    def test_streaming_iteration(self, tmp_path):
        records = [record(notification_id=i, clicked=False, click_time=None)
                   for i in range(3)]
        path = tmp_path / "trace.jsonl"
        write_trace(path, records)
        assert [r.notification_id for r in iter_trace(path)] == [0, 1, 2]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            list(iter_trace(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other", "version": 1}\n')
        with pytest.raises(ValueError, match="not a richnote-trace"):
            list(iter_trace(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "richnote-trace", "version": 99}\n')
        with pytest.raises(ValueError, match="unsupported version"):
            list(iter_trace(path))

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "richnote-trace", "version": 1}\n{"nope": true}\n'
        )
        with pytest.raises(ValueError, match=":2:"):
            list(iter_trace(path))

    def test_blank_lines_skipped(self, tmp_path):
        r = record(clicked=False, click_time=None)
        path = tmp_path / "trace.jsonl"
        write_trace(path, [r])
        path.write_text(path.read_text() + "\n\n")
        assert read_trace(path) == [r]
