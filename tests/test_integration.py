"""End-to-end integration tests: pub/sub -> trace -> learning -> scheduling.

These tests assert the paper's headline qualitative claims on a small
calibrated workload, i.e. the behaviour the benchmarks reproduce at scale.
"""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import UtilityAnnotations, run_experiment
from repro.experiments.workloads import eval_workload
from repro.ml.crossval import cross_validate
from repro.ml.dataset import build_training_set
from repro.ml.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=3)


@pytest.fixture(scope="module")
def users(workload):
    return workload.top_users(6)


class TestClassifierPipeline:
    def test_forest_learns_click_signal(self, workload):
        """Cross-validated accuracy/precision comfortably above chance.

        (The paper reports precision 0.700 / accuracy 0.689 on the real
        trace; the synthetic trace has comparable irreducible noise.)
        """
        x, y = build_training_set(workload.records)
        result = cross_validate(
            lambda: RandomForestClassifier(
                n_estimators=10, max_depth=8, min_samples_leaf=5, random_state=0
            ),
            x,
            y,
            n_folds=5,
            random_state=0,
        )
        base_rate = max(y.mean(), 1 - y.mean())
        assert result.accuracy > base_rate + 0.01
        assert result.precision > 0.5


class TestHeadlineClaims:
    def test_richnote_delivers_nearly_everything_at_low_budget(
        self, workload, annotations, users
    ):
        """Fig. 3a: RichNote ~100% delivery where baselines starve."""
        config = ExperimentConfig(weekly_budget_mb=2.0, seed=3)
        richnote = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        fifo = run_experiment(
            workload, MethodSpec(Method.FIFO, 3), config, annotations, users
        )
        assert richnote.aggregate.delivery_ratio > 0.95
        assert fifo.aggregate.delivery_ratio < 0.5

    def test_richnote_utility_beats_baselines(self, workload, annotations, users):
        """Fig. 4a at a generous budget: ~2x the fixed-level baselines.

        The small fixture spans 48 h, so a 300 MB/week plan (~86 MB over
        the horizon) plays the role of the paper's 100 MB point: enough for
        RichNote to deliver nearly everything at the richest level.
        """
        config = ExperimentConfig(weekly_budget_mb=300.0, seed=3)
        results = {
            spec.label: run_experiment(workload, spec, config, annotations, users)
            for spec in (
                MethodSpec(Method.RICHNOTE),
                MethodSpec(Method.FIFO, 3),
                MethodSpec(Method.UTIL, 3),
            )
        }
        richnote_utility = results["RichNote"].aggregate.total_utility
        for label in ("FIFO-L3", "UTIL-L3"):
            assert richnote_utility > 1.5 * results[label].aggregate.total_utility

    def test_richnote_queuing_delay_bounded_by_rounds(
        self, workload, annotations, users
    ):
        """Fig. 4d: RichNote delivers within ~a round; baselines backlog."""
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=3)
        richnote = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        util = run_experiment(
            workload, MethodSpec(Method.UTIL, 3), config, annotations, users
        )
        assert richnote.aggregate.mean_queuing_delay_s < 2 * config.round_seconds
        assert (
            util.aggregate.mean_queuing_delay_s
            > 3 * richnote.aggregate.mean_queuing_delay_s
        )

    def test_richnote_recall_dominates(self, workload, annotations, users):
        """Fig. 3c: recall tracks delivery ratio."""
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=3)
        richnote = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        fifo = run_experiment(
            workload, MethodSpec(Method.FIFO, 3), config, annotations, users
        )
        assert richnote.aggregate.recall > fifo.aggregate.recall

    def test_presentation_adaptation_with_budget(self, workload, annotations, users):
        """Fig. 5b: low budget -> metadata-heavy; high budget -> previews."""
        low = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            ExperimentConfig(weekly_budget_mb=1.0, seed=3),
            annotations,
            users,
        )
        high = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            ExperimentConfig(weekly_budget_mb=100.0, seed=3),
            annotations,
            users,
        )
        assert low.aggregate.level_mix.get(1, 0.0) > 0.5
        rich_high = sum(
            frac for level, frac in high.aggregate.level_mix.items() if level >= 5
        )
        assert rich_high > 0.3

    def test_queue_stability(self, workload, annotations, users):
        """Lyapunov promise: RichNote queues stay bounded."""
        config = ExperimentConfig(weekly_budget_mb=2.0, seed=3)
        result = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        for outcome in result.per_user:
            assert outcome.final_queue_length <= 5
