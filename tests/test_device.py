"""Tests for the mobile device model."""

import pytest

from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork, MarkovNetworkModel, NetworkState


def make_device(network=None, charging=True):
    battery = BatteryTrace([BatterySample(0.0, 1.0, charging=charging)])
    return MobileDevice(
        user_id=1, network=network or CellularOnlyNetwork(), battery=battery
    )


class TestRounds:
    def test_begin_round_counts_connectivity(self):
        device = make_device()
        for _ in range(3):
            device.begin_round(0.0, 3600.0)
        assert device.stats.rounds_total == 3
        assert device.stats.rounds_connected == 3

    def test_capacity_from_network(self):
        device = make_device()
        assert device.round_capacity_bytes(8.0) == pytest.approx(
            8.0 * device.network.bandwidth
        )

    def test_replenishment_passthrough(self):
        device = make_device(charging=True)
        assert device.replenishment(0.0, 3000.0) == 3000.0


class TestEnergyEstimation:
    def test_estimate_uses_amortized_overhead(self):
        device = make_device()
        estimate = device.estimate_energy(100_000)
        full = device.energy_model.item_energy(NetworkState.CELL, 100_000)
        assert 0 < estimate < full

    def test_estimate_infinite_when_off(self):
        off = MarkovNetworkModel(initial_state=NetworkState.OFF)
        device = make_device(network=off)
        assert device.estimate_energy(100) == float("inf")


class TestDownload:
    def test_batch_updates_stats(self):
        device = make_device()
        energy = device.download_batch([1000, 2000, 0])
        assert energy > 0
        assert device.stats.bytes_downloaded == 3000
        assert device.stats.energy_spent_joules == pytest.approx(energy)
        # The zero-size entry is not a notification.
        assert device.stats.notifications_received == 2

    def test_download_while_off_raises(self):
        off = MarkovNetworkModel(initial_state=NetworkState.OFF)
        device = make_device(network=off)
        with pytest.raises(RuntimeError):
            device.download_batch([100])
