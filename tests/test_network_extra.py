"""Tests for sporadic cellular and trace-driven connectivity models."""

import random

import pytest

from repro.sim.network import (
    NetworkState,
    SporadicCellularNetwork,
    TraceConnectivity,
)


class TestSporadicCellular:
    def test_never_wifi(self):
        model = SporadicCellularNetwork(rng=random.Random(0))
        states = {model.step() for _ in range(500)}
        assert NetworkState.WIFI not in states
        assert states == {NetworkState.CELL, NetworkState.OFF}

    def test_empirical_matches_stationary(self):
        model = SporadicCellularNetwork(
            p_stay_connected=0.8, p_stay_off=0.4, rng=random.Random(1)
        )
        expected = model.expected_connected_fraction()
        connected = sum(
            model.step() is NetworkState.CELL for _ in range(8000)
        ) / 8000
        assert connected == pytest.approx(expected, abs=0.03)

    def test_bandwidth_zero_when_off(self):
        model = SporadicCellularNetwork(
            initial_state=NetworkState.OFF, rng=random.Random(2)
        )
        assert not model.connected
        assert model.bandwidth == 0.0
        assert model.capacity_per_round(3600.0) == 0.0

    def test_always_connected_extreme(self):
        model = SporadicCellularNetwork(
            p_stay_connected=1.0, rng=random.Random(3)
        )
        assert all(model.step() is NetworkState.CELL for _ in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            SporadicCellularNetwork(p_stay_connected=1.5)
        with pytest.raises(ValueError):
            SporadicCellularNetwork(initial_state=NetworkState.WIFI)
        model = SporadicCellularNetwork()
        with pytest.raises(ValueError):
            model.capacity_per_round(-1.0)


class TestTraceConnectivity:
    def test_replays_states_in_order(self):
        trace = TraceConnectivity(
            [NetworkState.OFF, NetworkState.CELL, NetworkState.WIFI]
        )
        assert trace.step() is NetworkState.OFF
        assert trace.step() is NetworkState.CELL
        assert trace.step() is NetworkState.WIFI

    def test_last_state_persists(self):
        trace = TraceConnectivity([NetworkState.CELL])
        for _ in range(5):
            assert trace.step() is NetworkState.CELL

    def test_bandwidth_follows_state(self):
        trace = TraceConnectivity([NetworkState.WIFI, NetworkState.OFF])
        trace.step()
        wifi_capacity = trace.capacity_per_round(10.0)
        assert wifi_capacity > 0
        trace.step()
        assert trace.capacity_per_round(10.0) == 0.0
        assert not trace.connected

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceConnectivity([])

    def test_custom_bandwidth_validated(self):
        with pytest.raises(ValueError):
            TraceConnectivity(
                [NetworkState.CELL], bandwidth_bps={NetworkState.CELL: 1.0}
            )

    def test_works_as_device_network(self):
        """TraceConnectivity satisfies the ConnectivityModel protocol."""
        from repro.sim.battery import BatterySample, BatteryTrace
        from repro.sim.device import MobileDevice

        device = MobileDevice(
            user_id=1,
            network=TraceConnectivity([NetworkState.OFF, NetworkState.CELL]),
            battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
        )
        device.begin_round(0.0, 3600.0)
        assert not device.connected
        device.begin_round(3600.0, 3600.0)
        assert device.connected
        assert device.stats.rounds_connected == 1
