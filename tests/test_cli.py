"""Tests for the richnote CLI."""

import pytest

from repro.cli import _parse_method, build_parser, main
from repro.experiments.config import Method
from repro.trace.generator import Workload
from repro.trace.io import read_trace


class TestMethodParsing:
    def test_richnote(self):
        spec = _parse_method("richnote")
        assert spec.method is Method.RICHNOTE

    def test_baselines_with_level(self):
        assert _parse_method("fifo:3").fixed_level == 3
        assert _parse_method("util:2").method is Method.UTIL

    def test_errors(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_method("richnote:3")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_method("fifo")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_method("bogus:1")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate-trace"])


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.jsonl"
    code = main(
        ["--seed", "5", "generate-trace", "--preset", "small", "--out", str(path)]
    )
    assert code == 0
    return path


class TestCommands:
    def test_generate_trace_writes_valid_jsonl(self, trace_path, capsys):
        records = read_trace(trace_path)
        assert records
        workload = Workload.from_records(records)
        assert workload.config.duration_hours >= 47

    def test_train(self, trace_path, capsys):
        assert main(["train", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "accuracy=" in out
        assert "precision=" in out

    def test_run(self, trace_path, capsys):
        code = main(
            [
                "run",
                "--trace", str(trace_path),
                "--method", "richnote",
                "--budget", "5",
                "--users", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RichNote @ 5 MB/week" in out
        assert "delivery_ratio" in out

    def test_sweep(self, trace_path, capsys):
        code = main(
            [
                "sweep",
                "--trace", str(trace_path),
                "--budgets", "2,20",
                "--methods", "richnote,util:3",
                "--users", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3a_delivery_ratio" in out
        assert "UTIL-L3" in out

    def test_stats(self, trace_path, capsys):
        assert main(["stats", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "notifications :" in out
        assert "friend fraction" in out

    def test_survey(self, capsys):
        assert main(["survey", "--respondents", "40"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2(a)" in out
        assert "logarithmic" in out


class TestWorkloadFromRecords:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_records([])

    def test_duration_inferred_and_sorted(self, trace_path):
        records = read_trace(trace_path)
        shuffled = list(reversed(records))
        workload = Workload.from_records(shuffled)
        timestamps = [r.timestamp for r in workload.records]
        assert timestamps == sorted(timestamps)
        assert workload.catalog is None


class TestFiguresCommand:
    def test_writes_artifacts(self, trace_path, tmp_path, capsys):
        out = tmp_path / "artifacts"
        code = main(
            [
                "figures",
                "--trace", str(trace_path),
                "--out", str(out),
                "--budgets", "2,20",
                "--users", "3",
            ]
        )
        assert code == 0
        names = {p.name for p in out.iterdir()}
        assert "fig4a_total_utility.csv" in names
        assert "tables.txt" in names
        text = (out / "tables.txt").read_text()
        assert "fig3a_delivery_ratio" in text
        assert "presentation mix" in text
        # CSVs round-trip through the loader.
        from repro.experiments.reporting import load_series_csv

        series = load_series_csv(out / "fig4a_total_utility.csv")
        assert "RichNote" in series.series
