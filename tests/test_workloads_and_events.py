"""Tests for evaluation-workload presets and simulation event records."""

import pytest

from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.experiments.workloads import eval_workload, workload_spec
from repro.sim.events import (
    DeliveryCompleted,
    DeliveryDropped,
    NotificationArrival,
    RoundTick,
)


class TestWorkloadPresets:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            workload_spec("gigantic")

    def test_spec_users_consistent(self):
        for preset in ("small", "medium", "large"):
            spec = workload_spec(preset)
            assert spec.catalog.n_users == spec.graph.n_users

    def test_small_calibration(self):
        """Per-user volume in the regime the budget sweep needs."""
        workload = eval_workload("small")
        counts = [
            len(workload.records_for_user(u)) for u in workload.top_users(10)
        ]
        assert 20 <= min(counts)
        assert max(counts) <= 400

    def test_memoization_returns_same_object(self):
        assert eval_workload("small") is eval_workload("small")

    def test_seed_changes_workload(self):
        a = eval_workload("small", seed=23)
        b = eval_workload("small", seed=99)
        assert len(a.records) != len(b.records) or (
            a.records[0].to_dict() != b.records[0].to_dict()
        )


class TestEventRecords:
    def test_arrival_record(self):
        item = ContentItem(
            item_id=1,
            user_id=2,
            kind=ContentKind.FRIEND_FEED,
            created_at=5.0,
            ladder=build_audio_ladder(),
        )
        event = NotificationArrival(time=5.0, item=item)
        assert event.item.user_id == 2

    def test_round_tick_and_delivery_records(self):
        tick = RoundTick(time=3600.0, round_index=1)
        done = DeliveryCompleted(
            time=3600.0, user_id=2, item_id=1, level=3,
            size_bytes=200_200, energy_joules=5.0, utility=0.4,
        )
        dropped = DeliveryDropped(
            time=3600.0, user_id=2, item_id=9, reason="expired"
        )
        assert tick.round_index == 1
        assert done.level == 3
        assert dropped.reason == "expired"

    def test_records_are_frozen(self):
        tick = RoundTick(time=0.0, round_index=0)
        with pytest.raises(AttributeError):
            tick.round_index = 5
