"""Tests for the FIFO and UTIL baseline schedulers."""

import pytest

from repro.core.baselines import FifoScheduler, UtilScheduler
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()
ROUND = 3600.0


def make_scheduler(cls, fixed_level=3, theta=1_000_000.0):
    battery = BatteryTrace([BatterySample(0.0, 1.0, True)])
    device = MobileDevice(user_id=1, network=CellularOnlyNetwork(), battery=battery)
    return cls(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
        fixed_level=fixed_level,
    )


def make_item(item_id, utility=0.5, created_at=0.0):
    return ContentItem(
        item_id=item_id,
        user_id=1,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=LADDER,
        content_utility=utility,
    )


class TestFixedLevel:
    def test_level_below_one_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler(FifoScheduler, fixed_level=0)

    def test_always_delivers_at_fixed_level(self):
        scheduler = make_scheduler(UtilScheduler, fixed_level=3)
        for item_id in range(3):
            scheduler.enqueue(make_item(item_id))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.deliveries
        assert all(d.level == 3 for d in result.deliveries)

    def test_fixed_level_clamped_to_ladder(self):
        scheduler = make_scheduler(FifoScheduler, fixed_level=99)
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.deliveries[0].level == LADDER.max_level


class TestFifoOrdering:
    def test_delivers_oldest_first(self):
        # Budget affords exactly one 10 s presentation per round.
        scheduler = make_scheduler(
            FifoScheduler, fixed_level=3, theta=float(LADDER.size(3))
        )
        scheduler.enqueue(make_item(1, utility=0.1, created_at=10.0))
        scheduler.enqueue(make_item(2, utility=0.9, created_at=5.0))
        result = scheduler.run_round(ROUND, ROUND)
        assert [d.item.item_id for d in result.deliveries] == [2]

    def test_backlog_drains_in_arrival_order(self):
        scheduler = make_scheduler(
            FifoScheduler, fixed_level=3, theta=float(LADDER.size(3))
        )
        for item_id, created in ((1, 30.0), (2, 10.0), (3, 20.0)):
            scheduler.enqueue(make_item(item_id, created_at=created))
        delivered = []
        for round_index in range(1, 4):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            delivered.extend(d.item.item_id for d in result.deliveries)
        assert delivered == [2, 3, 1]


class TestUtilOrdering:
    def test_delivers_highest_utility_first(self):
        scheduler = make_scheduler(
            UtilScheduler, fixed_level=3, theta=float(LADDER.size(3))
        )
        scheduler.enqueue(make_item(1, utility=0.1))
        scheduler.enqueue(make_item(2, utility=0.9))
        scheduler.enqueue(make_item(3, utility=0.5))
        delivered = []
        for round_index in range(1, 4):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            delivered.extend(d.item.item_id for d in result.deliveries)
        assert delivered == [2, 3, 1]

    def test_skips_unaffordable_items_but_keeps_them_queued(self):
        scheduler = make_scheduler(UtilScheduler, fixed_level=3, theta=100.0)
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.deliveries == []
        assert result.queue_length_after == 1

    def test_budget_rollover_eventually_delivers(self):
        need = LADDER.size(3)
        scheduler = make_scheduler(UtilScheduler, fixed_level=3, theta=need / 4)
        scheduler.enqueue(make_item(1))
        delivered = 0
        for round_index in range(1, 6):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            delivered += len(result.deliveries)
        assert delivered == 1
