"""Tests for the pass-1 project call graph behind the R7 rules.

The interesting property is *cross-module* resolution: an ``async def``
in one module calling a sync helper in another must still learn, through
the import-canonicalized call graph, that the helper bottoms out in
``time.sleep``.  These tests build tiny multi-file projects in tmp dirs
and run the real ``analyze_paths`` entry point over them.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_paths
from repro.analysis.callgraph import (
    is_blocking_target,
    module_dotted,
)
from repro.analysis.engine import ModuleInfo, build_index, load_module


def project(tmp_path, files: dict[str, str]):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def graph_for(tmp_path, files: dict[str, str]):
    root = project(tmp_path, files)
    modules = [load_module(root / relpath, root) for relpath in sorted(files)]
    assert all(isinstance(m, ModuleInfo) for m in modules)
    index = build_index(modules)
    return index.calls


class TestModuleDotted:
    def test_src_prefix_and_init_are_stripped(self):
        assert module_dotted("src/repro/service/server.py") == (
            "repro.service.server"
        )
        assert module_dotted("src/repro/service/__init__.py") == "repro.service"
        assert module_dotted("helper.py") == "helper"


class TestBlockingTargets:
    @pytest.mark.parametrize(
        "target", ["time.sleep", "open", "subprocess.run", "requests.get"]
    )
    def test_known_blocking(self, target):
        assert is_blocking_target(target)

    @pytest.mark.parametrize(
        "target", ["asyncio.sleep", "time.monotonic", "math.sqrt"]
    )
    def test_known_nonblocking(self, target):
        assert not is_blocking_target(target)


class TestCrossModuleResolution:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/util.py": """\
            import time


            def pause(seconds):
                time.sleep(seconds)


            def relay(seconds):
                pause(seconds)
        """,
        "pkg/svc.py": """\
            from pkg.util import relay


            async def tick():
                relay(1.0)
        """,
    }

    def test_imported_call_resolves_to_defining_module(self, tmp_path):
        graph = graph_for(tmp_path, self.FILES)
        tick = graph.lookup("pkg.svc.tick")
        assert tick is not None and tick.is_async
        assert [c.target for c in tick.calls] == ["pkg.util.relay"]

    def test_blocking_propagates_across_modules_with_chain(self, tmp_path):
        graph = graph_for(tmp_path, self.FILES)
        assert graph.blocking_chain("pkg.util.pause") == (
            "pkg.util.pause",
            "time.sleep",
        )
        assert graph.blocking_chain("pkg.util.relay") == (
            "pkg.util.relay",
            "pkg.util.pause",
            "time.sleep",
        )

    def test_rl701_fires_through_the_cross_module_chain(self, tmp_path):
        root = project(tmp_path, self.FILES)
        report = analyze_paths([root], root=root, select="RL701")
        assert [(f.path, f.code) for f in report.findings] == [
            ("pkg/svc.py", "RL701")
        ]
        assert "pkg.util.relay" in report.findings[0].message
        assert "time.sleep" in report.findings[0].message


class TestAsyncCalleesDoNotPropagate:
    def test_awaiting_an_async_helper_is_not_blocking(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "mod.py": """\
                    import asyncio


                    async def napper():
                        await asyncio.sleep(1.0)


                    async def caller():
                        await napper()
                """
            },
        )
        assert graph.blocking_chain("mod.caller") is None
        assert graph.blocking_chain("mod.napper") is None


class TestSelfMethodResolution:
    def test_self_calls_qualify_by_class(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "svc.py": """\
                    import asyncio


                    class Service:
                        async def run(self):
                            self._tick()
                            await asyncio.sleep(0)

                        def _tick(self):
                            pass
                """
            },
        )
        run = graph.lookup("svc.Service.run")
        assert run is not None
        assert "svc.Service._tick" in [c.target for c in run.calls]
        methods = {m.name for m in graph.class_methods("svc.py", "Service")}
        assert methods == {"run", "_tick"}

    def test_spawned_coroutines_are_recorded(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "svc.py": """\
                    import asyncio


                    class Service:
                        def __init__(self):
                            self._tasks = []

                        def kick(self):
                            self._tasks.append(
                                asyncio.ensure_future(self._work())
                            )

                        async def _work(self):
                            await asyncio.sleep(0)
                """
            },
        )
        kick = graph.lookup("svc.Service.kick")
        assert kick is not None
        assert kick.spawns == ("svc.Service._work",)
