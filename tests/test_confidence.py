"""Tests for multi-seed replication."""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.confidence import (
    MetricSummary,
    compare_replicated,
    dominates_across_seeds,
    replicate_experiment,
)


class TestMetricSummary:
    def test_moments(self):
        summary = MetricSummary(name="m", values=(1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)
        assert (summary.minimum, summary.maximum) == (1.0, 3.0)

    def test_single_value_zero_std(self):
        assert MetricSummary(name="m", values=(5.0,)).std == 0.0

    def test_dominance(self):
        winner = MetricSummary(name="m", values=(5.0, 6.0))
        loser = MetricSummary(name="m", values=(1.0, 4.9))
        assert dominates_across_seeds(winner, loser)
        assert not dominates_across_seeds(loser, winner)


class TestReplication:
    @pytest.fixture(scope="class")
    def replicated(self):
        config = ExperimentConfig(weekly_budget_mb=5.0)
        return replicate_experiment(
            MethodSpec(Method.RICHNOTE), config, seeds=(101, 202), top_users=5
        )

    def test_metrics_collected_per_seed(self, replicated):
        assert replicated.seeds == (101, 202)
        assert "total_utility" in replicated.metrics
        assert len(replicated.metrics["total_utility"].values) == 2

    def test_worlds_actually_differ(self, replicated):
        values = replicated.metrics["total_utility"].values
        assert values[0] != values[1]

    def test_summary_table_renders(self, replicated):
        table = replicated.summary_table()
        assert "RichNote" in table
        assert "total_utility" in table

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            replicate_experiment(
                MethodSpec(Method.RICHNOTE), ExperimentConfig(), seeds=()
            )


class TestSeedRobustClaims:
    def test_richnote_recall_dominates_fifo_across_seeds(self):
        """The Fig. 3(c) claim holds in every regenerated world."""
        config = ExperimentConfig(weekly_budget_mb=5.0)
        summaries = compare_replicated(
            [MethodSpec(Method.RICHNOTE), MethodSpec(Method.FIFO, 3)],
            config,
            seeds=(101, 202),
            metric="recall",
            top_users=5,
        )
        assert dominates_across_seeds(
            summaries["RichNote"], summaries["FIFO-L3"]
        )
