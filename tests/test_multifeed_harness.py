"""Integration: per-feed cadences through the experiment harness."""

import pytest

from repro.core.content import ContentKind
from repro.core.multifeed import FeedCadences
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import UtilityAnnotations, run_user
from repro.experiments.workloads import eval_workload
from repro.pubsub.topics import TopicKind


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=13)


def cadences(base=3600.0, coarse_factor=6):
    return FeedCadences(
        base_period=base,
        periods={
            ContentKind.FRIEND_FEED: base,
            ContentKind.ALBUM_RELEASE: coarse_factor * base,
            ContentKind.PLAYLIST_UPDATE: coarse_factor * base,
        },
    )


class TestConfigValidation:
    def test_base_period_must_match_round_seconds(self):
        with pytest.raises(ValueError, match="base period"):
            ExperimentConfig(
                round_seconds=3600.0, feed_cadences=cadences(base=1800.0)
            )

    def test_valid_config_accepted(self):
        config = ExperimentConfig(feed_cadences=cadences())
        assert config.feed_cadences is not None


class TestHarnessIntegration:
    def _run(self, workload, annotations, config):
        # Pick a user who receives both friend and non-friend items.
        for user_id in workload.top_users(20):
            records = workload.records_for_user(user_id)
            kinds = {r.kind for r in records}
            if TopicKind.ARTIST in kinds or TopicKind.PLAYLIST in kinds:
                duration = workload.config.duration_hours * 3600.0
                return records, run_user(
                    user_id, records, MethodSpec(Method.RICHNOTE), config,
                    annotations, duration,
                )
        pytest.skip("no user with mixed feeds in the fixture")

    def test_multifeed_run_conserves_items(self, workload, annotations):
        config = ExperimentConfig(
            weekly_budget_mb=100.0, feed_cadences=cadences(), seed=13
        )
        records, outcome = self._run(workload, annotations, config)
        metrics = outcome.metrics
        assert metrics.total_notifications == len(records)
        # Generous budget: everything eventually delivered.
        assert metrics.delivery_ratio == pytest.approx(1.0)

    def test_coarse_feeds_wait_for_their_boundary(self, workload, annotations):
        """Album/playlist items batch up: their delay exceeds friend items'."""
        base = ExperimentConfig(weekly_budget_mb=100.0, seed=13)
        multi = ExperimentConfig(
            weekly_budget_mb=100.0,
            feed_cadences=cadences(coarse_factor=12),
            seed=13,
        )
        _, plain_outcome = self._run(workload, annotations, base)
        _, multi_outcome = self._run(workload, annotations, multi)
        # Batching can only increase the mean queuing delay.
        assert (
            multi_outcome.metrics.mean_queuing_delay_s
            >= plain_outcome.metrics.mean_queuing_delay_s - 1e-6
        )
