"""Fixture: RL701 negatives -- async code that never blocks the loop."""

import asyncio
import time


def measure():
    return time.monotonic()  # reading a clock is not blocking


async def ok_awaits_only():
    await asyncio.sleep(0.5)
    return measure()


async def ok_offloaded():
    # Blocking work explicitly pushed to a worker thread.
    return await asyncio.to_thread(time.sleep, 1.0)


async def ok_calls_async_helper():
    await ok_awaits_only()
