"""OK fixture: ``core/channels.py`` alone may read the cost tables.

RL601 bans ``repro.core._channel_costs`` everywhere else in the scoped
trees; this file's path ends ``core/channels.py``, so both import forms
must stay silent.
"""

from repro.core import _channel_costs
from repro.core._channel_costs import COST_CURVES


def per_byte(name: str) -> float:
    assert name in _channel_costs.COST_CURVES
    return COST_CURVES[name][0]
