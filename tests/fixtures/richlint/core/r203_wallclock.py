"""Fixture: RL203 wallclock (lives under core/: the scoped zone)."""

import time
from datetime import date, datetime


def stamps():
    a = time.time()  # EXPECT[RL203]
    b = time.time_ns()  # EXPECT[RL203]
    c = datetime.now()  # EXPECT[RL203]
    d = datetime.utcnow()  # EXPECT[RL203]
    e = date.today()  # EXPECT[RL203]
    return a, b, c, d, e


def simulation_clock(now, round_seconds):
    return now + round_seconds
