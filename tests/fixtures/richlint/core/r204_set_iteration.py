"""Fixture: RL204 set-iteration (lives under core/: the hot-path zone)."""


def iterate_sets(items, tags: set[int]):
    delivered = set()
    for x in delivered:  # EXPECT[RL204]
        print(x)
    for y in {1, 2, 3}:  # EXPECT[RL204]
        print(y)
    for z in set(items):  # EXPECT[RL204]
        print(z)
    for t in tags:  # EXPECT[RL204]
        print(t)
    squares = [v * v for v in delivered]  # EXPECT[RL204]
    return squares


def iterate_safely(items):
    delivered = set()
    ordered = sorted(delivered)
    for x in ordered:
        print(x)
    for y in sorted({1, 2, 3}):
        print(y)
    for z in items:
        print(z)
