"""Fixture: RL601 -- core/runtime must never import orchestration."""

from repro.core.content import ContentItem  # same layer: fine
from repro.runtime.loop import RoundLoop  # runtime from core: fine
from repro.core.channels import Channel  # the sanctioned pricing seam: fine

from repro.experiments.runner import run_experiment  # EXPECT[RL601]
from repro.experiments import metrics  # EXPECT[RL601]
import repro.cli  # EXPECT[RL601]
from repro.service.sinks import GuardedSink  # EXPECT[RL601]
import repro.service.degrade  # EXPECT[RL601]
from repro.core._channel_costs import COST_CURVES  # EXPECT[RL601]
from repro.core import _channel_costs  # EXPECT[RL601]


def fine(loop: RoundLoop, item: ContentItem) -> None:
    loop.enqueue(item)


def priced(channel: Channel, wire: float) -> float:
    return channel.cost.billed_bytes(wire)
