"""Fixture: RL601 -- core/runtime must never import orchestration."""

from repro.core.content import ContentItem  # same layer: fine
from repro.runtime.loop import RoundLoop  # runtime from core: fine

from repro.experiments.runner import run_experiment  # EXPECT[RL601]
from repro.experiments import metrics  # EXPECT[RL601]
import repro.cli  # EXPECT[RL601]


def fine(loop: RoundLoop, item: ContentItem) -> None:
    loop.enqueue(item)
