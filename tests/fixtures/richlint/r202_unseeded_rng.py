"""Fixture: RL202 unseeded-rng positives and negatives (never imported)."""

import random

import numpy as np
from numpy.random import default_rng


def unseeded():
    a = random.Random()  # EXPECT[RL202]
    b = np.random.default_rng()  # EXPECT[RL202]
    c = default_rng()  # EXPECT[RL202]
    return a, b, c


def seeded(seed):
    a = random.Random(seed)
    b = np.random.default_rng(seed)
    c = default_rng(seed=seed)
    return a, b, c
