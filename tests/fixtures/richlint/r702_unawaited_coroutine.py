"""Fixture: RL702 -- coroutines created but never awaited (never imported)."""

import asyncio


async def worker(n):
    await asyncio.sleep(n)


async def bad_bare_call():
    worker(1)  # EXPECT[RL702]


async def bad_stdlib_bare():
    asyncio.sleep(0.5)  # EXPECT[RL702]


async def bad_assigned_never_used():
    pending = worker(2)  # EXPECT[RL702]
    return None


def bad_from_sync_context():
    worker(3)  # EXPECT[RL702]


class Service:
    async def _push(self):
        await asyncio.sleep(0)

    async def bad_method(self):
        self._push()  # EXPECT[RL702]
