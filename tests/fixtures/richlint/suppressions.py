"""Fixture: inline suppression handling (never imported)."""

import random


def suppressed_calls(items):
    a = random.random()  # richlint: ignore[RL201] -- fixture: documented exception
    # richlint: ignore[RL201] -- comment-above style also covers the next line
    random.shuffle(items)
    b = random.Random()  # richlint: ignore -- bare ignore suppresses every rule
    c = random.Random()  # richlint: ignore[R2] -- family selector
    d = random.Random()  # richlint: ignore[unseeded-rng] -- rule-name selector
    e = random.Random()  # richlint: ignore[RL101] -- wrong code: NOT suppressed  # EXPECT[RL202]
    return a, b, c, d, e
