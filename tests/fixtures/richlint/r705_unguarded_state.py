"""Fixture: RL705 -- multi-task writes to shared state (never imported)."""

import asyncio


class BadService:
    def __init__(self):
        self.pending = {}
        self.delivered = 0
        self._tasks = []

    async def ingest(self, item_id):
        self.pending[item_id] = 1.0  # EXPECT[RL705]
        self._tasks.append(asyncio.ensure_future(self._push(item_id)))

    async def run(self):
        self._settle(0)
        await asyncio.gather(*self._tasks)

    async def _push(self, item_id):
        await asyncio.sleep(0)
        self.delivered += 1  # EXPECT[RL705]
        self._settle(item_id)

    def _settle(self, item_id):
        self.pending.pop(item_id, None)  # EXPECT[RL705]
