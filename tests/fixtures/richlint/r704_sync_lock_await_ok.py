"""Fixture: RL704 negatives -- locks never held across a suspension."""

import asyncio
import threading


async def ok_released_before_await():
    lock = threading.Lock()
    lock.acquire()
    lock.release()
    await asyncio.sleep(1.0)


async def ok_async_lock():
    lock = asyncio.Lock()
    async with lock:
        await asyncio.sleep(1.0)


async def ok_no_await_in_critical_section():
    lock = threading.Lock()
    with lock:
        counter = 1
    await asyncio.sleep(counter)


class Worker:
    def __init__(self):
        self._mutex = threading.Lock()
        self.count = 0

    async def ok_method(self):
        with self._mutex:
            self.count += 1
        await asyncio.sleep(0)
