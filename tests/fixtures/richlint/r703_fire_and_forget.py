"""Fixture: RL703 -- task handles discarded at spawn (never imported)."""

import asyncio


async def job():
    await asyncio.sleep(0)


async def bad_bare_spawns():
    asyncio.ensure_future(job())  # EXPECT[RL703]
    asyncio.create_task(job())  # EXPECT[RL703]


async def bad_loop_spawn():
    loop = asyncio.get_event_loop()
    loop.create_task(job())  # EXPECT[RL703]
