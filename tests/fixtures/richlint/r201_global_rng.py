"""Fixture: RL201 global-rng positives and negatives (never imported)."""

import random

import numpy as np
from numpy.random import shuffle


def global_state(items):
    x = random.random()  # EXPECT[RL201]
    random.seed(42)  # EXPECT[RL201]
    random.shuffle(items)  # EXPECT[RL201]
    y = np.random.rand(3)  # EXPECT[RL201]
    np.random.shuffle(items)  # EXPECT[RL201]
    shuffle(items)  # EXPECT[RL201]
    z = random.SystemRandom()  # EXPECT[RL201]
    return x, y, z


def explicit_streams(seed):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random(), gen.random()
