"""Fixture: RL101 unit-mix positives and negatives (never imported)."""

MB = 1_000_000
KB = 1024


def mixed_addition(size_bytes, limit_kb, budget_mb, kappa_joules, cap_kj):
    a = size_bytes + limit_kb  # EXPECT[RL101]
    b = budget_mb - size_bytes  # EXPECT[RL101]
    c = kappa_joules + cap_kj  # EXPECT[RL101]
    d = size_bytes + kappa_joules  # EXPECT[RL101]
    return a, b, c, d


def mixed_comparison(size_bytes, limit_kb, ttl_seconds, age_hours):
    if size_bytes > limit_kb:  # EXPECT[RL101]
        return True
    return ttl_seconds < age_hours  # EXPECT[RL101]


def clean_same_unit(size_bytes, other_bytes, ttl_seconds, grace_seconds):
    total = size_bytes + other_bytes
    wait = ttl_seconds - grace_seconds
    return total, wait


def clean_with_conversion(budget_mb, size_bytes, limit_kb):
    # Arithmetic through a conversion constant is unit-unknown: no flag.
    total = budget_mb * MB + size_bytes
    upper = limit_kb * KB - size_bytes
    return total, upper


def clean_unitless(count, total):
    return count + total
