"""Fixture: RL601 -- the kernel layer must stay pure array math."""

import heapq  # stdlib: always fine
import numpy as np  # third-party math: fine

from repro.runtime.policy import RichNotePolicy  # EXPECT[RL601]
from repro.runtime import registry  # EXPECT[RL601]
from . import loop  # EXPECT[RL601]
import repro.experiments.runner  # EXPECT[RL601]
from repro.pubsub.broker import Broker  # EXPECT[RL601]


def fine(values):
    heapq.heapify(list(values))
    return np.asarray(values)
