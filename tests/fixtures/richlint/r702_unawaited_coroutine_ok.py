"""Fixture: RL702 negatives -- every coroutine is consumed."""

import asyncio


async def worker(n):
    await asyncio.sleep(n)


async def ok_awaited():
    await worker(1)


async def ok_assigned_then_awaited():
    coro = worker(2)
    await coro


async def ok_spawned():
    task = asyncio.ensure_future(worker(3))
    await task


async def ok_gathered():
    return await asyncio.gather(worker(1), worker(2))


class Service:
    async def _push(self):
        await asyncio.sleep(0)

    async def ok_method(self):
        await self._push()
