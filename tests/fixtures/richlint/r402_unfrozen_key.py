"""Fixture: RL402 unfrozen-key positives and negatives (never imported)."""

from dataclasses import dataclass


@dataclass
class MutableKey:
    user_id: int


@dataclass(frozen=True)
class FrozenKey:
    user_id: int


@dataclass(eq=False)
class IdentityKey:
    user_id: int


def use_keys(cache):
    cache[MutableKey(1)] = "a"  # EXPECT[RL402]
    literal = {MutableKey(2): "b"}  # EXPECT[RL402]
    member = MutableKey(3) in cache  # EXPECT[RL402]
    bucket = {MutableKey(4)}  # EXPECT[RL402]
    digest = hash(MutableKey(5))  # EXPECT[RL402]
    return literal, member, bucket, digest


def use_hashable_keys(cache):
    cache[FrozenKey(1)] = "a"
    cache[IdentityKey(2)] = "b"
    return FrozenKey(3) in cache
