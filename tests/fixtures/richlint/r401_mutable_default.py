"""Fixture: RL401 mutable-default positives and negatives (never imported)."""

from dataclasses import dataclass, field


@dataclass
class BadDefaults:
    items: list = []  # EXPECT[RL401]
    table: dict = {}  # EXPECT[RL401]
    seen: set = set()  # EXPECT[RL401]
    pool: list = list()  # EXPECT[RL401]
    wrapped: list = field(default=[])  # EXPECT[RL401]


@dataclass
class GoodDefaults:
    items: list = field(default_factory=list)
    table: dict = field(default_factory=dict)
    count: int = 0
    label: str = "x"


class NotADataclass:
    items: list = []  # plain class attribute: out of scope
