"""Fixture: RL704 -- await while holding a sync lock (never imported)."""

import asyncio
import threading


async def bad_with_local_lock():
    lock = threading.Lock()
    with lock:  # EXPECT[RL704]
        await asyncio.sleep(1.0)


async def bad_with_inline_ctor():
    with threading.Lock():  # EXPECT[RL704]
        await asyncio.sleep(0.1)


async def bad_acquire_then_await():
    lock = threading.Lock()
    lock.acquire()  # EXPECT[RL704]
    await asyncio.sleep(1.0)
    lock.release()


async def bad_acquire_await_on_branch(flaky):
    lock = threading.Lock()
    lock.acquire()  # EXPECT[RL704]
    if flaky:
        await asyncio.sleep(1.0)
    lock.release()


class Worker:
    def __init__(self):
        self._mutex = threading.Lock()

    async def bad_method(self):
        with self._mutex:  # EXPECT[RL704]
            await asyncio.sleep(2.0)
