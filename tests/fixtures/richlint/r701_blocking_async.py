"""Fixture: RL701 -- blocking calls reachable inside async defs (never imported)."""

import asyncio
import subprocess
import time


def sync_helper(path):
    # Blocking, but sync context: only flagged through async callers.
    with open(path) as handle:
        return handle.read()


def sync_middleman(path):
    return sync_helper(path)


async def bad_direct():
    time.sleep(1.0)  # EXPECT[RL701]
    subprocess.run(["true"])  # EXPECT[RL701]


async def bad_transitive():
    return sync_middleman("trace.jsonl")  # EXPECT[RL701]


async def bad_open():
    handle = open("trace.jsonl")  # EXPECT[RL701]
    return handle


async def dead_code_not_flagged():
    return 0
    time.sleep(5.0)  # unreachable: the CFG knows


async def dead_branch_after_infinite_loop():
    while True:
        await asyncio.sleep(1.0)
    time.sleep(9.0)  # unreachable behind a break-less while True


async def ok_async_sleep():
    await asyncio.sleep(1.0)


async def ok_nested_sync_def():
    def helper():
        time.sleep(1.0)  # body runs on some later activation, not here

    return helper


def sync_caller_is_fine():
    time.sleep(0.1)
