"""Fixture: RL705 negatives -- guarded, single-context, or local state."""

import asyncio


class GuardedService:
    """Same write pattern as the bad fixture, but the discipline is named."""

    def __init__(self):
        # richlint: guarded-by(event-loop)
        self.pending = {}

    async def ingest(self, item_id):
        self.pending[item_id] = 1.0

    async def run(self):
        self.pending.clear()


class SingleContextService:
    """Only the scheduler loop writes; one context needs no guard."""

    def __init__(self):
        self.rounds = 0

    async def run(self):
        self.rounds += 1
        await asyncio.sleep(0)

    async def snapshot(self):
        return self.rounds  # reads are not writes
