"""Fixture: RL703 negatives -- every spawned task handle is retained."""

import asyncio


async def job():
    await asyncio.sleep(0)


class Egress:
    def __init__(self):
        self._tasks = []

    def fire(self):
        # The service/server.py idiom: spawn and retain in one statement.
        self._tasks.append(asyncio.ensure_future(job()))

    async def settle(self):
        await asyncio.gather(*self._tasks)
        self._tasks.clear()


async def ok_local_retention():
    task = asyncio.create_task(job())
    await task
