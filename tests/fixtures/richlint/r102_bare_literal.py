"""Fixture: RL102 bare-literal positives and negatives (never imported)."""

PREVIEW_BYTES = 100_000.0


def spend(budget):
    budget.debit(500)  # EXPECT[RL102]
    budget.credit(10.5)  # EXPECT[RL102]
    budget.can_afford(1_000_000)  # EXPECT[RL102]
    budget.replenish(3.5)  # EXPECT[RL102]


def spend_named(budget, size_bytes):
    budget.debit(size_bytes)
    budget.debit(PREVIEW_BYTES)
    budget.credit(0)  # zero is unit-free: exempt
    budget.replenish(0.0)
