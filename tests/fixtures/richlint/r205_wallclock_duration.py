"""Fixture: RL205 wall-clock duration math (unscoped: fires in any zone)."""

import time
from time import time as wall
from datetime import datetime


def work():
    return None


def elapsed_direct():
    started = time.time()
    work()
    return time.time() - started  # EXPECT[RL205]


def elapsed_via_names():
    started = time.time()
    work()
    ended = time.time()
    return ended - started  # EXPECT[RL205]


def elapsed_from_alias():
    t0 = wall()
    work()
    return wall() - t0  # EXPECT[RL205]


def elapsed_ns():
    t0 = time.time_ns()
    work()
    return (time.time_ns() - t0) / 1e9  # EXPECT[RL205]


def deadline_check(budget_seconds):
    started = datetime.now()
    work()
    return (datetime.now() - started).total_seconds() > budget_seconds  # EXPECT[RL205]


def elapsed_monotonic():
    started = time.monotonic()
    work()
    return time.monotonic() - started  # fine: immune to clock steps


def elapsed_perf():
    started = time.perf_counter()
    work()
    return time.perf_counter() - started  # fine


def timestamp_only():
    return time.time()  # a *stamp* is RL203's business, not RL205's


def unrelated_subtraction(a, b):
    return a - b
