"""Fixture: RL501 early-return positives and negatives (never imported)."""

from repro.analysis.markers import conserves


@conserves("debited == delivered + refunded + wasted")
def leaky(budget, size_bytes, ok):
    drained = budget.debit(size_bytes)
    if not ok:
        return None  # EXPECT[RL501]
    budget.credit(drained)
    return drained


@conserves
def leaky_bare_marker(budget, size_bytes, ok):
    drained = budget.debit(size_bytes)
    if not ok:
        return None  # EXPECT[RL501]
    budget.credit(drained)
    return drained


def leaky_comment_marker(budget, size_bytes, ok):  # richlint: conserves
    drained = budget.debit(size_bytes)
    if not ok:
        return None  # EXPECT[RL501]
    budget.credit(drained)
    return drained


@conserves("guard clauses before the first debit are fine")
def sound(budget, size_bytes, ok):
    if not ok:
        return None  # before any debit: exempt
    drained = budget.debit(size_bytes)
    budget.credit(drained)
    return drained


@conserves("no refund path: only the terminal return is allowed")
def sound_terminal_only(budget, size_bytes):
    drained = budget.debit(size_bytes)
    return drained


def unmarked(budget, size_bytes, ok):
    budget.debit(size_bytes)
    if not ok:
        return None  # not marked @conserves: out of scope
    return True
