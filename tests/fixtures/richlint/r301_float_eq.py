"""Fixture: RL301 float-eq positives and negatives (never imported)."""


def exact_comparisons(utility, other_utility, share_joules, upper, count):
    if utility == other_utility:  # EXPECT[RL301]
        return 1
    if share_joules != 0.25:  # EXPECT[RL301]
        return 2
    if upper == 1.0:  # EXPECT[RL301]
        return 3
    return count


def exempt_comparisons(size_bytes, utility, count, name):
    if size_bytes == 0:  # exact-zero sentinel: exempt
        return 0
    if utility != 0.0:  # exact-zero sentinel: exempt
        return 1
    if count == 3:  # int vs int: no float hint
        return 2
    return name == "richnote"
