"""Tests for the persistent sweep-scale execution engine.

The contract under test (DESIGN.md §10): the pool is a pure performance
optimization -- every aggregate, per-user outcome and delivery sequence
must be bit-identical to the sequential runner, with only the workload
shards and score map crossing the process boundary (once, at init).
"""

import multiprocessing
import os
import pickle

import pytest

import repro.experiments.pool as pool_module
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.metrics import MetricsAccumulator, aggregate
from repro.experiments.pool import ExperimentPool, sweep_budgets_parallel
from repro.experiments.runner import (
    UtilityAnnotations,
    run_experiment,
    sweep_budgets,
)
from repro.experiments.shards import balanced_batches, shard_by_user
from repro.experiments.timing import SweepTelemetry
from repro.experiments.workloads import eval_workload

ALL_SPECS = [
    MethodSpec(Method.RICHNOTE),
    MethodSpec(Method.FIFO, 2),
    MethodSpec(Method.UTIL, 3),
]

#: Crash-injection plumbing for TestPoolRecovery.  Module-level (not
#: fixture-local) so fork-started workers can unpickle the function by
#: qualified name; the sentinel dict is populated by the test before the
#: pool forks, so children inherit the path.
_CRASH_SENTINEL = {"path": ""}
_real_run_cell_batch = pool_module._run_cell_batch


def _crash_once_batch(spec, config, user_ids, digest_deliveries):
    """Worker-side stand-in: the first worker to claim the sentinel dies.

    ``open(..., "x")`` is atomic, so exactly one process across the
    pool's whole lifetime hard-exits mid-batch; everyone else (including
    the rebuilt pool's workers) runs the real batch.
    """
    try:
        with open(_CRASH_SENTINEL["path"], "x"):
            pass
    except FileExistsError:
        return _real_run_cell_batch(spec, config, user_ids, digest_deliveries)
    os._exit(1)


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=7)


@pytest.fixture(scope="module")
def users(workload):
    return workload.top_users(6)


@pytest.fixture(scope="module")
def pool(workload, annotations, users):
    with ExperimentPool(
        workload, annotations=annotations, user_ids=users, max_workers=2
    ) as shared:
        yield shared


class TestPoolParity:
    """Parallel == sequential, bit for bit, for all three policies."""

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_cell_matches_sequential_exactly(
        self, workload, annotations, users, pool, spec
    ):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        sequential = run_experiment(workload, spec, config, annotations, users)
        parallel = pool.run_cell(spec, config, digest_deliveries=True)

        # Aggregates are equal as dataclasses: exact float equality.
        assert parallel.aggregate == sequential.aggregate
        # Per-user outcomes come back in the sequential fold order with
        # identical metrics ...
        assert [o.metrics.user_id for o in parallel.per_user] == [
            o.metrics.user_id for o in sequential.per_user
        ]
        for mine, twin in zip(parallel.per_user, sequential.per_user):
            assert mine.metrics == twin.metrics
            assert mine.mean_backlog_bytes == twin.mean_backlog_bytes
            assert mine.max_queue_length == twin.max_queue_length
        # ... and every delivery *sequence* digests identically.
        from repro.experiments.runner import run_user

        by_user = shard_by_user(workload.records, users)
        duration = workload.config.duration_hours * 3600.0
        for outcome in parallel.per_user:
            user_id = outcome.metrics.user_id
            twin = run_user(
                user_id, by_user[user_id], spec, config, annotations,
                duration, digest_deliveries=True,
            )
            assert outcome.delivery_digest == twin.delivery_digest

    def test_sweep_grid_matches_sequential(self, workload, annotations, users):
        config = ExperimentConfig(seed=7)
        budgets = (2.0, 10.0)
        sequential = sweep_budgets(
            workload, ALL_SPECS, budgets, config, annotations, users
        )
        parallel = sweep_budgets_parallel(
            workload, ALL_SPECS, budgets, config, annotations, users,
            max_workers=2,
        )
        assert set(parallel) == set(sequential)
        for key in sequential:
            assert parallel[key].aggregate == sequential[key].aggregate

    def test_streaming_mode_keeps_summary_not_outcomes(
        self, workload, annotations, users, pool
    ):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        spec = MethodSpec(Method.RICHNOTE)
        streamed = pool.run_cell(spec, config, keep_per_user=False)
        kept = pool.run_cell(spec, config, keep_per_user=True)
        assert streamed.per_user == []
        assert streamed.aggregate == kept.aggregate
        assert streamed.summary is not None
        assert streamed.mean_backlog_bytes == kept.mean_backlog_bytes
        assert streamed.failures.attempts == kept.failures.attempts


class TestPoolBoundary:
    """What crosses the process boundary after init: kilobytes, no records."""

    def test_cell_payload_excludes_records(self, pool):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        payload = pool.cell_payload(MethodSpec(Method.RICHNOTE), config)
        assert b"NotificationRecord" not in payload
        assert b"trace.records" not in payload
        assert len(payload) < 8_192

    def test_no_simulatable_users_rejected(self, workload, annotations):
        with pytest.raises(ValueError, match="no users"):
            ExperimentPool(
                workload, annotations=annotations, user_ids=[10**9]
            )

    def test_duplicate_cells_rejected(self, pool):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        spec = MethodSpec(Method.RICHNOTE)
        with pytest.raises(ValueError, match="duplicate cell"):
            pool.run_cells([(spec, config), (spec, config)])

    def test_method_spec_and_config_pickle_roundtrip(self):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        spec = MethodSpec(Method.UTIL, fixed_level=3)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert pickle.loads(pickle.dumps(config)) == config


class TestShardStorePool:
    """Workers memory-map a columnar shard store instead of unpickling
    records (ISSUE 8): same results, path-sized init payload."""

    def test_mmap_pool_matches_sequential_exactly(
        self, workload, annotations, users, tmp_path
    ):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        spec = MethodSpec(Method.RICHNOTE)
        store_dir = tmp_path / "shards"
        telemetry = SweepTelemetry()
        with ExperimentPool(
            workload,
            annotations=annotations,
            user_ids=users,
            max_workers=2,
            telemetry=telemetry,
            shard_store_dir=store_dir,
        ) as mapped:
            assert mapped.shard_store_dir == str(store_dir)
            # The initializer ships a path, not pickled shards.
            shards_arg = mapped._initargs[0]
            assert shards_arg is None
            result = mapped.run_cell(spec, config, digest_deliveries=True)
        assert store_dir.is_dir() and any(store_dir.iterdir())
        assert telemetry.meta["shard_store"] is True

        sequential = run_experiment(workload, spec, config, annotations, users)
        assert result.aggregate == sequential.aggregate
        assert [o.metrics.user_id for o in result.per_user] == [
            o.metrics.user_id for o in sequential.per_user
        ]
        for mine, twin in zip(result.per_user, sequential.per_user):
            assert mine.metrics == twin.metrics
            assert mine.max_queue_length == twin.max_queue_length


class TestPoolRecovery:
    """A worker killed mid-batch must not kill the sweep (ISSUE: OOM-killed
    workers poisoning the executor)."""

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="crash injection patches a forked module global",
    )
    def test_broken_pool_rebuilds_once_and_folds_identically(
        self, workload, annotations, users, tmp_path, monkeypatch
    ):
        _CRASH_SENTINEL["path"] = str(tmp_path / "crashed-once")
        monkeypatch.setattr(pool_module, "_run_cell_batch", _crash_once_batch)
        spec = MethodSpec(Method.RICHNOTE)
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        telemetry = SweepTelemetry()
        with ExperimentPool(
            workload,
            annotations=annotations,
            user_ids=users,
            max_workers=2,
            telemetry=telemetry,
        ) as fresh:
            result = fresh.run_cell(spec, config)
            assert fresh.worker_restarts == 1
        # The retried batches replay the same resident shards with the
        # same seeds: aggregates stay bit-identical to sequential.
        sequential = run_experiment(workload, spec, config, annotations, users)
        assert result.aggregate == sequential.aggregate
        assert [o.metrics.user_id for o in result.per_user] == [
            o.metrics.user_id for o in sequential.per_user
        ]
        assert telemetry.meta["worker_restarts"] == 1

    def test_clean_run_reports_zero_restarts(self, pool):
        assert pool.worker_restarts == 0


class TestBalancedBatches:
    def test_partitions_completely_and_disjointly(self):
        costs = {user: (user * 37) % 11 + 1 for user in range(100)}
        batches = balanced_batches(costs, 7)
        assert len(batches) == 7
        flat = [user for batch in batches for user in batch]
        assert sorted(flat) == sorted(costs)
        assert len(flat) == len(set(flat))

    def test_deterministic(self):
        costs = {user: (user * 13) % 29 + 1 for user in range(50)}
        assert balanced_batches(costs, 4) == balanced_batches(costs, 4)
        # Insertion order of the mapping must not matter.
        shuffled = dict(sorted(costs.items(), key=lambda kv: -kv[0]))
        assert balanced_batches(shuffled, 4) == balanced_batches(costs, 4)

    def test_balances_loads(self):
        costs = {user: 1 for user in range(40)}
        batches = balanced_batches(costs, 4)
        assert [len(batch) for batch in batches] == [10, 10, 10, 10]
        # One giant user does not drag equal-cost peers into its batch.
        costs[99] = 1000
        batches = balanced_batches(costs, 4)
        giant = next(batch for batch in batches if 99 in batch)
        assert giant == [99]

    def test_more_batches_than_users_collapses(self):
        assert balanced_batches({1: 5, 2: 3}, 10) == [[1], [2]]
        assert balanced_batches({}, 3) == []

    def test_invalid_batch_count(self):
        with pytest.raises(ValueError, match="n_batches"):
            balanced_batches({1: 1}, 0)


class TestShardByUser:
    def test_preserves_record_order_and_covers_all_users(self, workload):
        users = workload.top_users(5)
        shards = shard_by_user(workload.records, users)
        assert set(shards) == set(users)
        for user_id, records in shards.items():
            assert records == workload.records_for_user(user_id)
            times = [r.timestamp for r in records]
            assert times == sorted(times)

    def test_requested_user_without_records_gets_empty_shard(self, workload):
        shards = shard_by_user(workload.records, [10**9])
        assert shards == {10**9: []}


class TestMetricsAccumulator:
    def test_streaming_fold_equals_batch_aggregate(
        self, workload, annotations, users
    ):
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=7)
        result = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        accumulator = MetricsAccumulator()
        for outcome in result.per_user:
            accumulator.add(outcome.metrics)
        assert accumulator.result() == aggregate(
            [o.metrics for o in result.per_user]
        )

    def test_empty_fold_rejected(self):
        with pytest.raises(ValueError, match="no user metrics"):
            MetricsAccumulator().result()


class TestTelemetry:
    def test_sweep_records_stages_and_cells(
        self, workload, annotations, users, tmp_path
    ):
        telemetry = SweepTelemetry()
        sweep_budgets_parallel(
            workload,
            [MethodSpec(Method.RICHNOTE)],
            (5.0,),
            ExperimentConfig(seed=7),
            annotations,
            users,
            max_workers=2,
            keep_per_user=False,
            telemetry=telemetry,
        )
        payload = telemetry.write(tmp_path / "BENCH_sweep.json")
        assert payload["schema"] == "richnote-bench-sweep/2"
        assert payload["totals"]["users"] == len(users)
        assert set(payload["stages_s"]) == {"train", "shard"}
        assert payload["meta"]["engine"] == "ExperimentPool"
        assert payload["meta"]["workers"] == 2
        assert payload["meta"]["worker_restarts"] == 0
        [cell] = payload["cells"]
        assert cell["label"] == "RichNote"
        assert cell["budget_mb"] == 5.0
        assert set(cell["stages_s"]) == {"simulate", "aggregate"}
        assert cell["stages_s"]["simulate"] > 0.0
        assert (tmp_path / "BENCH_sweep.json").exists()
