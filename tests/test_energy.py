"""Tests for the transfer-energy model (Balasubramanian et al. fits)."""

import pytest

from repro.sim.energy import (
    GSM_PROFILE,
    THREEG_PROFILE,
    WIFI_PROFILE,
    RadioProfile,
    TransferEnergyModel,
)
from repro.sim.network import NetworkState


class TestRadioProfile:
    def test_linear_fit(self):
        profile = RadioProfile(per_kb_joules=0.01, overhead_joules=2.0)
        assert profile.transfer_energy(1024) == pytest.approx(0.01 + 2.0)

    def test_zero_bytes_costs_nothing(self):
        assert THREEG_PROFILE.transfer_energy(0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            THREEG_PROFILE.transfer_energy(-1)

    def test_published_constants(self):
        assert THREEG_PROFILE == RadioProfile(0.025, 3.5)
        assert GSM_PROFILE == RadioProfile(0.036, 1.7)
        assert WIFI_PROFILE == RadioProfile(0.007, 5.9)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            RadioProfile(per_kb_joules=-0.1, overhead_joules=0.0)


class TestTransferEnergyModel:
    def test_wifi_cheaper_per_byte_than_cell(self):
        model = TransferEnergyModel()
        size = 10 * 1024 * 1024  # large enough for overhead to wash out
        assert model.item_energy(NetworkState.WIFI, size) < model.item_energy(
            NetworkState.CELL, size
        )

    def test_cell_overhead_dominates_small_transfers(self):
        """3G tail energy dominates a 200 B metadata notification."""
        model = TransferEnergyModel()
        energy = model.item_energy(NetworkState.CELL, 200)
        assert energy == pytest.approx(0.025 * 200 / 1024 + 3.5)
        assert 3.5 / energy > 0.99

    def test_no_transfers_while_off(self):
        model = TransferEnergyModel()
        with pytest.raises(ValueError):
            model.item_energy(NetworkState.OFF, 100)

    def test_batch_amortizes_overhead(self):
        model = TransferEnergyModel()
        sizes = [100_000] * 10
        batched = model.batch_energy(NetworkState.CELL, sizes)
        separate = sum(model.item_energy(NetworkState.CELL, s) for s in sizes)
        assert batched == pytest.approx(separate - 9 * 3.5)

    def test_empty_batch_costs_nothing(self):
        model = TransferEnergyModel()
        assert model.batch_energy(NetworkState.CELL, []) == 0.0
        assert model.batch_energy(NetworkState.CELL, [0, 0]) == 0.0

    def test_batch_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            TransferEnergyModel().batch_energy(NetworkState.CELL, [10, -1])

    def test_marginal_energy_has_no_overhead(self):
        model = TransferEnergyModel()
        assert model.marginal_energy(NetworkState.CELL, 1024) == pytest.approx(0.025)

    def test_selection_estimate_between_marginal_and_full(self):
        model = TransferEnergyModel()
        size = 50_000
        marginal = model.marginal_energy(NetworkState.CELL, size)
        full = model.item_energy(NetworkState.CELL, size)
        estimate = model.estimate_for_selection(NetworkState.CELL, size, 10)
        assert marginal < estimate < full

    def test_selection_estimate_zero_for_zero_bytes(self):
        model = TransferEnergyModel()
        assert model.estimate_for_selection(NetworkState.CELL, 0) == 0.0

    def test_selection_estimate_validates_batch(self):
        with pytest.raises(ValueError):
            TransferEnergyModel().estimate_for_selection(NetworkState.CELL, 10, 0)
