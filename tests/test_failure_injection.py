"""Failure-injection tests: degenerate devices, dead batteries, outages,
and the fault-tolerant delivery pipeline.

The scheduler must degrade gracefully -- hold items, roll budget over, and
recover -- rather than crash or leak queue state, under:

* a device that never connects;
* a long outage followed by reconnection (burst drain);
* a battery that is dead for the whole horizon (no energy replenishment);
* an empty round stream (no arrivals at all);
* items whose ladder is just {not sent, metadata};
* flaky transfers: mid-flight disconnects, timeout storms, rejected
  pushes -- with retry/backoff, byte refunds and dead-letter accounting;
* a sink that raises, behind the broker's per-sink circuit breaker.

The ``chaos`` marker selects the randomized fault-schedule suite that
``make chaos`` runs at three fixed seeds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import UtilScheduler
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind, Presentation, PresentationLadder
from repro.core.delivery import DeliveryEngine, RetryPolicy
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.faults import (
    FaultConfig,
    FaultKind,
    FaultOutcome,
    FlakyConnectivity,
    RandomFaultPolicy,
    ScriptedFaultPolicy,
)
from repro.sim.network import NetworkState, TraceConnectivity

LADDER = build_audio_ladder()
ROUND = 3600.0

#: The fixed seeds ``make chaos`` replays (see Makefile `chaos` target).
CHAOS_SEEDS = (101, 202, 303)


def make_scheduler(network_states, battery_level=0.8, charging=False, theta=500_000.0):
    device = MobileDevice(
        user_id=1,
        network=TraceConnectivity(network_states),
        battery=BatteryTrace(
            [BatterySample(0.0, battery_level, charging=charging)]
        ),
    )
    return RichNoteScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


def make_util_scheduler(
    engine,
    fixed_level=5,
    theta=2_000_000.0,
    network_states=(NetworkState.CELL,),
    ttl_seconds=None,
):
    """UTIL baseline behind the fault-tolerant delivery engine.

    The fixed level makes attempt sizes predictable (level 5 = the 30 s
    preview, 600 200 B on the default audio ladder).
    """
    device = MobileDevice(
        user_id=1,
        network=TraceConnectivity(list(network_states)),
        battery=BatteryTrace([BatterySample(0.0, 0.9, charging=True)]),
    )
    return UtilScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
        fixed_level=fixed_level,
        ttl_seconds=ttl_seconds,
        delivery_engine=engine,
    )


def make_item(item_id, created_at=0.0, ladder=LADDER):
    return ContentItem(
        item_id=item_id,
        user_id=1,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=ladder,
        content_utility=0.6,
    )


class TestPermanentOutage:
    def test_items_held_forever_without_crash(self):
        scheduler = make_scheduler([NetworkState.OFF])
        for item_id in range(5):
            scheduler.enqueue(make_item(item_id))
        for round_index in range(1, 20):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            assert result.deliveries == []
        assert scheduler.pending_items == 5
        # Budget accumulated untouched for 19 rounds.
        assert scheduler.data_budget.available == pytest.approx(19 * 500_000.0)


class TestOutageRecovery:
    def test_burst_drain_after_reconnect(self):
        states = [NetworkState.OFF] * 5 + [NetworkState.CELL]
        scheduler = make_scheduler(states, theta=300_000.0)
        for item_id in range(4):
            scheduler.enqueue(make_item(item_id))
        deliveries = []
        for round_index in range(1, 7):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            deliveries.extend(result.deliveries)
        # Everything drains in the reconnect round, with rolled-over budget
        # affording rich presentations.
        assert len(deliveries) == 4
        assert all(d.time == 6 * ROUND for d in deliveries)
        assert max(d.level for d in deliveries) >= 3


class TestDeadBattery:
    def test_energy_budget_starves_but_data_flow_continues(self):
        """Below 5% charge e(t)=0: P(t) drains to 0 and stays there.

        The energy term then maximally penalizes expensive presentations,
        but the (soft) Lyapunov constraint must not deadlock delivery.
        """
        scheduler = make_scheduler(
            [NetworkState.CELL], battery_level=0.03, charging=False
        )
        delivered = 0
        for round_index in range(1, 6):
            scheduler.enqueue(make_item(round_index, created_at=round_index * ROUND - 1))
            result = scheduler.run_round(round_index * ROUND, ROUND)
            delivered += len(result.deliveries)
        assert delivered == 5
        # No replenishment ever accepted: P(t) only drains.
        assert scheduler.energy_budget.available <= 3000.0


class TestEmptyStream:
    def test_rounds_without_arrivals_are_noops(self):
        scheduler = make_scheduler([NetworkState.CELL])
        for round_index in range(1, 10):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            assert result.deliveries == []
            assert result.queue_length_after == 0
            assert result.backlog_bytes_after == 0.0


class TestMinimalLadder:
    def test_metadata_only_ladder_schedulable(self):
        tiny = PresentationLadder(
            [
                Presentation(0, 0, 0.0),
                Presentation(1, 200, 1.0, "metadata"),
            ]
        )
        scheduler = make_scheduler([NetworkState.CELL], theta=1000.0)
        scheduler.enqueue(make_item(1, ladder=tiny))
        result = scheduler.run_round(ROUND, ROUND)
        assert [d.level for d in result.deliveries] == [1]

    def test_mixed_ladders_in_one_queue(self):
        """Items with different ladder shapes coexist in one MCKP round."""
        tiny = PresentationLadder(
            [Presentation(0, 0, 0.0), Presentation(1, 200, 1.0)]
        )
        scheduler = make_scheduler([NetworkState.CELL], theta=10_000_000.0)
        scheduler.enqueue(make_item(1, ladder=tiny))
        scheduler.enqueue(make_item(2, ladder=LADDER))
        result = scheduler.run_round(ROUND, ROUND)
        levels = {d.item.item_id: d.level for d in result.deliveries}
        assert levels[1] == 1
        assert levels[2] == LADDER.max_level


#: Level 5 of the default audio ladder: metadata + 30 s preview.
PREVIEW_30S_BYTES = LADDER.size(5)

#: Deterministic retry policy: no jitter, retry eligible immediately.
IMMEDIATE_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_seconds=0.0, max_backoff_seconds=0.0
)


class _MaxJitterRng(random.Random):
    """rng whose uniform() always returns the upper bound (worst-case jitter)."""

    def uniform(self, a, b):
        return b


class TestFlakyTransfers:
    def test_disconnect_at_half_of_30s_preview(self):
        """A transfer dropped at 50% refunds half the bytes and retries."""
        engine = DeliveryEngine(
            fault_policy=ScriptedFaultPolicy(
                [FaultOutcome(FaultKind.DISCONNECT, fraction_completed=0.5)]
            ),
            retry=IMMEDIATE_RETRY,
            rng=random.Random(7),
        )
        scheduler = make_util_scheduler(engine, fixed_level=5)
        scheduler.enqueue(make_item(1))

        first = scheduler.run_round(ROUND, ROUND)
        assert first.deliveries == []
        assert first.attempts == 1
        assert first.failed_attempts == 1
        assert first.retries_scheduled == 1
        assert first.refunded_bytes == pytest.approx(PREVIEW_30S_BYTES / 2)
        assert first.wasted_bytes == pytest.approx(PREVIEW_30S_BYTES / 2)
        assert first.fault_counts == {"disconnect": 1}
        assert scheduler.pending_items == 1
        # Half the attempt was refunded to B(t).
        assert scheduler.data_budget.available == pytest.approx(
            2_000_000.0 - PREVIEW_30S_BYTES / 2
        )

        second = scheduler.run_round(2 * ROUND, ROUND)
        assert [d.level for d in second.deliveries] == [5]
        assert scheduler.pending_items == 0
        stats = engine.stats
        assert stats.bytes_debited == pytest.approx(2 * PREVIEW_30S_BYTES)
        assert stats.conservation_error() < 1e-6

    def test_timeout_storm_dead_letters_after_max_attempts(self):
        """Every attempt times out: bounded retries, then a dead letter."""
        engine = DeliveryEngine(
            fault_policy=ScriptedFaultPolicy(
                [FaultOutcome(FaultKind.TIMEOUT)] * 10
            ),
            retry=IMMEDIATE_RETRY,
            rng=random.Random(7),
        )
        scheduler = make_util_scheduler(engine, fixed_level=5)
        scheduler.enqueue(make_item(1))
        results = [
            scheduler.run_round(i * ROUND, ROUND) for i in range(1, 4)
        ]
        assert sum(r.failed_attempts for r in results) == 3
        dead = results[-1].dropped
        assert len(dead) == 1
        assert dead[0].reason == "delivery_failed:timeout"
        assert dead[0].attempts == 3
        assert results[-1].dead_letters == 1
        assert scheduler.pending_items == 0
        assert scheduler.total_dropped == 1
        # Timeouts transfer nothing: every debit was refunded in full.
        stats = engine.stats
        assert stats.bytes_wasted == 0.0
        assert stats.bytes_refunded == pytest.approx(stats.bytes_debited)
        assert stats.conservation_error() < 1e-6

    def test_rejected_push_is_fully_refunded(self):
        """A channel rejection costs no bytes at all."""
        engine = DeliveryEngine(
            fault_policy=ScriptedFaultPolicy([FaultOutcome(FaultKind.REJECT)]),
            retry=IMMEDIATE_RETRY,
            rng=random.Random(7),
        )
        scheduler = make_util_scheduler(engine, fixed_level=5)
        scheduler.enqueue(make_item(1))
        scheduler.run_round(ROUND, ROUND)
        assert scheduler.data_budget.available == pytest.approx(2_000_000.0)

    def test_redelivery_degrades_presentation_level(self):
        """After repeated failures the retry is capped one level lower."""
        engine = DeliveryEngine(
            fault_policy=ScriptedFaultPolicy(
                [FaultOutcome(FaultKind.DISCONNECT, fraction_completed=0.25)]
            ),
            retry=RetryPolicy(
                max_attempts=3,
                base_backoff_seconds=0.0,
                max_backoff_seconds=0.0,
                degrade_after_attempts=1,
            ),
            rng=random.Random(7),
        )
        scheduler = make_util_scheduler(engine, fixed_level=5)
        scheduler.enqueue(make_item(1))
        scheduler.run_round(ROUND, ROUND)
        second = scheduler.run_round(2 * ROUND, ROUND)
        assert [d.level for d in second.deliveries] == [4]

    def test_retry_that_cannot_beat_ttl_is_dead_lettered(self):
        """TTL-aware redelivery: pointless retries die immediately."""
        engine = DeliveryEngine(
            fault_policy=ScriptedFaultPolicy(
                [FaultOutcome(FaultKind.DISCONNECT, fraction_completed=0.5)]
            ),
            retry=RetryPolicy(
                max_attempts=5,
                base_backoff_seconds=2 * ROUND,
                max_backoff_seconds=2 * ROUND,
            ),
            rng=_MaxJitterRng(7),  # jitter always lands at the ceiling
        )
        scheduler = make_util_scheduler(
            engine, fixed_level=5, ttl_seconds=1.5 * ROUND
        )
        scheduler.enqueue(make_item(1, created_at=0.0))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.dead_letters == 1
        assert result.dropped[0].reason == "retry_would_expire:disconnect"
        assert scheduler.pending_items == 0

    def test_corrupt_download_wastes_all_bytes(self):
        engine = DeliveryEngine(
            fault_policy=ScriptedFaultPolicy(
                [FaultOutcome(FaultKind.CORRUPT, fraction_completed=1.0)]
            ),
            retry=IMMEDIATE_RETRY,
            rng=random.Random(7),
        )
        scheduler = make_util_scheduler(engine, fixed_level=5)
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.refunded_bytes == 0.0
        assert result.wasted_bytes == pytest.approx(PREVIEW_30S_BYTES)
        assert scheduler.data_budget.available == pytest.approx(
            2_000_000.0 - PREVIEW_30S_BYTES
        )


class TestNoFaultParity:
    """With no fault policy the engine is byte-identical to the fast path."""

    @staticmethod
    def _run(engine):
        device = MobileDevice(
            user_id=1,
            network=TraceConnectivity([NetworkState.CELL]),
            battery=BatteryTrace([BatterySample(0.0, 0.8, charging=False)]),
        )
        scheduler = RichNoteScheduler(
            device=device,
            data_budget=DataBudget(theta_bytes=700_000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0),
            delivery_engine=engine,
        )
        outcomes = []
        for round_index in range(1, 8):
            if round_index <= 5:
                scheduler.enqueue(
                    make_item(round_index, created_at=(round_index - 1) * ROUND)
                )
            result = scheduler.run_round(round_index * ROUND, ROUND)
            outcomes.append(
                (
                    [
                        (d.item.item_id, d.level, d.size_bytes,
                         d.energy_joules, d.utility)
                        for d in result.deliveries
                    ],
                    result.data_budget_after,
                    result.energy_budget_after,
                    result.backlog_bytes_after,
                )
            )
        return outcomes

    def test_deliveries_and_budgets_bit_identical(self):
        atomic = self._run(engine=None)
        engine = self._run(engine=DeliveryEngine(fault_policy=None))
        assert atomic == engine


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestFaultDeterminism:
    """Same seed => identical RoundResult streams (reproducibility fix)."""

    @staticmethod
    def _stream(seed):
        config = FaultConfig(
            p_disconnect=0.25, p_timeout=0.1, p_corrupt=0.05, p_reject=0.05
        )
        engine = DeliveryEngine(
            fault_policy=RandomFaultPolicy(config),
            retry=RetryPolicy(base_backoff_seconds=0.0, max_backoff_seconds=0.0),
            rng=random.Random(seed),
        )
        states = [
            NetworkState.CELL if random.Random(seed + 1).random() < 0.8
            else NetworkState.OFF
            for _ in range(12)
        ]
        scheduler = make_util_scheduler(
            engine, fixed_level=4, network_states=states
        )
        stream = []
        for round_index in range(1, 13):
            if round_index <= 8:
                scheduler.enqueue(
                    make_item(round_index, created_at=(round_index - 1) * ROUND)
                )
            result = scheduler.run_round(round_index * ROUND, ROUND)
            stream.append(
                (
                    result.round_index,
                    tuple(
                        (d.item.item_id, d.level, d.size_bytes, d.utility)
                        for d in result.deliveries
                    ),
                    tuple((drop.item.item_id, drop.reason, drop.attempts)
                          for drop in result.dropped),
                    result.attempts,
                    result.failed_attempts,
                    result.refunded_bytes,
                    result.wasted_bytes,
                    tuple(sorted(result.fault_counts.items())),
                    result.data_budget_after,
                    result.energy_budget_after,
                )
            )
        return stream

    def test_same_seed_same_stream(self, seed):
        assert self._stream(seed) == self._stream(seed)

    def test_different_seeds_diverge(self, seed):
        # Not a hard guarantee, but with 12 rounds at ~45% fault rate two
        # streams agreeing byte-for-byte would indicate a shared rng.
        assert self._stream(seed) != self._stream(seed + 7)


@pytest.mark.chaos
class TestConservationProperties:
    """Randomized fault schedules never corrupt budget accounting."""

    @given(
        p_disconnect=st.floats(0.0, 0.4),
        p_timeout=st.floats(0.0, 0.2),
        p_corrupt=st.floats(0.0, 0.15),
        p_reject=st.floats(0.0, 0.15),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_budgets_non_negative_and_bytes_conserved(
        self, p_disconnect, p_timeout, p_corrupt, p_reject, seed
    ):
        config = FaultConfig(
            p_disconnect=p_disconnect,
            p_timeout=p_timeout,
            p_corrupt=p_corrupt,
            p_reject=p_reject,
        )
        engine = DeliveryEngine(
            fault_policy=RandomFaultPolicy(config),
            retry=RetryPolicy(
                max_attempts=3,
                base_backoff_seconds=0.0,
                max_backoff_seconds=0.0,
                degrade_after_attempts=1,
            ),
            rng=random.Random(seed),
        )
        chain = random.Random(seed + 1)
        states = [
            NetworkState.CELL if chain.random() < 0.75 else NetworkState.OFF
            for _ in range(10)
        ]
        scheduler = make_util_scheduler(
            engine, fixed_level=5, theta=1_500_000.0, network_states=states
        )
        for round_index in range(1, 11):
            if round_index <= 6:
                scheduler.enqueue(
                    make_item(round_index, created_at=(round_index - 1) * ROUND)
                )
            scheduler.run_round(round_index * ROUND, ROUND)
            assert scheduler.data_budget.available >= 0.0
            assert scheduler.energy_budget.available >= 0.0
            stats = engine.stats
            assert stats.bytes_refunded <= stats.bytes_debited + 1e-6
            assert stats.conservation_error() < 1e-6
        device = scheduler.device
        assert device.stats.bytes_downloaded >= -1e-6
        assert device.stats.energy_spent_joules >= -1e-6


class TestFlakyConnectivityWrapper:
    def test_composes_with_trace_model(self):
        base = TraceConnectivity([NetworkState.CELL])
        flaky = FlakyConnectivity(base, p_outage=1.0, rng=random.Random(3))
        flaky.step()
        assert not flaky.connected
        assert flaky.state is NetworkState.OFF
        assert flaky.capacity_per_round(ROUND) == 0.0

    def test_zero_outage_is_transparent(self):
        base = TraceConnectivity([NetworkState.WIFI])
        flaky = FlakyConnectivity(base, p_outage=0.0, rng=random.Random(3))
        flaky.step()
        assert flaky.connected
        assert flaky.state is NetworkState.WIFI
        assert flaky.bandwidth == base.bandwidth

    def test_invalid_outage_probability_rejected(self):
        base = TraceConnectivity([NetworkState.WIFI])
        for bad in (-0.1, 1.0001, 2.0):
            with pytest.raises(ValueError, match="p_outage"):
                FlakyConnectivity(base, p_outage=bad, rng=random.Random(1))

    def test_full_outage_rate_blanks_every_connected_round(self):
        base = TraceConnectivity([NetworkState.WIFI, NetworkState.CELL])
        flaky = FlakyConnectivity(base, p_outage=1.0, rng=random.Random(7))
        for _ in range(6):
            flaky.step()
            assert not flaky.connected
            assert flaky.state is NetworkState.OFF
            assert flaky.bandwidth == 0.0
            assert flaky.capacity_per_round(ROUND) == 0.0

    def test_base_disconnect_consumes_no_rng_draw(self):
        """When the trace itself is OFF the wrapper adds nothing and must
        not advance the fault stream -- otherwise the outage schedule
        would depend on the trace instead of only on the seed."""

        class CountingRandom(random.Random):
            draws = 0

            def random(self):
                CountingRandom.draws += 1
                return super().random()

        CountingRandom.draws = 0
        base = TraceConnectivity([NetworkState.OFF])
        flaky = FlakyConnectivity(base, p_outage=1.0, rng=CountingRandom(3))
        flaky.step()
        assert flaky.state is NetworkState.OFF
        assert not flaky.connected
        assert CountingRandom.draws == 0

    def test_reconnects_on_the_round_after_an_outage(self):
        """A forced outage must not leak into the next round: the flag is
        recomputed every step, so the wrapper turns transparent again the
        moment the stream stops drawing an outage."""

        class ScriptedRng:
            def __init__(self, script):
                self._script = list(script)

            def random(self):
                return self._script.pop(0)

        base = TraceConnectivity([NetworkState.WIFI])
        flaky = FlakyConnectivity(base, p_outage=0.5, rng=ScriptedRng([0.1, 0.9]))
        flaky.step()
        assert not flaky.connected  # 0.1 < 0.5: forced off this round
        assert flaky.capacity_per_round(ROUND) == 0.0
        flaky.step()
        assert flaky.connected  # 0.9 >= 0.5: outage over
        assert flaky.state is NetworkState.WIFI
        assert flaky.bandwidth == base.bandwidth
        assert flaky.capacity_per_round(ROUND) == base.capacity_per_round(ROUND)

    def test_negative_round_duration_rejected(self):
        base = TraceConnectivity([NetworkState.WIFI])
        flaky = FlakyConnectivity(base, p_outage=0.0, rng=random.Random(3))
        with pytest.raises(ValueError, match=">= 0"):
            flaky.capacity_per_round(-1.0)


class TestSinkCircuitBreaker:
    """Broker-side fault isolation: flush survives a raising sink."""

    @staticmethod
    def _broker(breaker=None):
        from repro.pubsub.broker import Broker, DeliveryMode
        from repro.pubsub.subscriptions import SubscriptionStore
        from repro.pubsub.topics import Publication, Topic, TopicKind

        store = SubscriptionStore()
        topic = Topic(TopicKind.FRIEND, 9)
        store.subscribe(1, topic)
        broker = Broker(
            subscriptions=store,
            default_mode=DeliveryMode.ROUND,
            breaker=breaker,
        )

        def publish(timestamp):
            return broker.publish(
                Publication(topic=topic, publisher_id=9, timestamp=timestamp)
            )

        return broker, publish

    def test_flush_survives_failing_sink(self):
        broker, publish = self._broker()
        healthy: list[int] = []

        def bad_sink(notification):
            raise RuntimeError("push channel down")

        broker.add_sink(bad_sink)
        broker.add_sink(lambda n: healthy.append(n.notification_id))
        for timestamp in (1.0, 2.0, 3.0):
            publish(timestamp)
        released = broker.flush()
        assert len(released) == 3
        # The healthy sink received the whole batch despite the bad one.
        assert len(healthy) == 3
        assert broker.stats.sink_errors == 3
        assert broker.pending_count == 0

    def test_breaker_open_half_open_closed(self):
        from repro.pubsub.broker import BreakerState, CircuitBreakerConfig

        breaker = CircuitBreakerConfig(failure_threshold=2, cooldown_skips=2)
        broker, publish = self._broker(breaker=breaker)
        failures_left = [2]

        def recovering_sink(notification):
            if failures_left[0] > 0:
                failures_left[0] -= 1
                raise RuntimeError("transient sink failure")

        broker.add_sink(recovering_sink)

        def flush_one(timestamp):
            publish(timestamp)
            broker.flush()

        flush_one(1.0)
        assert broker.breaker_states() == [BreakerState.CLOSED]
        flush_one(2.0)  # second consecutive failure -> OPEN
        assert broker.breaker_states() == [BreakerState.OPEN]
        assert broker.stats.sink_errors == 2
        flush_one(3.0)  # skipped (cooldown 1/2)
        flush_one(4.0)  # skipped (cooldown 2/2)
        assert broker.stats.sink_skipped == 2
        assert broker.breaker_states() == [BreakerState.OPEN]
        flush_one(5.0)  # HALF_OPEN probe; sink recovered -> CLOSED
        assert broker.breaker_states() == [BreakerState.CLOSED]
        assert broker.stats.sink_errors == 2  # no new errors
        flush_one(6.0)
        assert broker.breaker_states() == [BreakerState.CLOSED]

    def test_half_open_probe_failure_reopens(self):
        from repro.pubsub.broker import BreakerState, CircuitBreakerConfig

        breaker = CircuitBreakerConfig(failure_threshold=1, cooldown_skips=1)
        broker, publish = self._broker(breaker=breaker)

        def always_bad(notification):
            raise RuntimeError("permanently down")

        broker.add_sink(always_bad)
        for timestamp in (1.0, 2.0, 3.0):
            publish(timestamp)
            broker.flush()
        # fail -> OPEN, skip, probe fails -> OPEN again
        assert broker.breaker_states() == [BreakerState.OPEN]
        assert broker.stats.sink_errors == 2
        assert broker.stats.sink_skipped == 1

    def test_half_open_admits_exactly_one_probe(self):
        """Regression: a half-open breaker must latch while its probe is
        in flight, or concurrent async deliveries all pass at once."""
        from repro.pubsub.broker import (
            BreakerState,
            CircuitBreakerConfig,
            SinkCircuit,
        )

        circuit = SinkCircuit(
            CircuitBreakerConfig(failure_threshold=1, cooldown_skips=1)
        )
        circuit.record_failure()
        assert circuit.state is BreakerState.OPEN
        assert circuit.allow() == (False, False)  # cooldown skip
        assert circuit.allow() == (True, True)  # the probe
        assert circuit.state is BreakerState.HALF_OPEN
        # While the probe is unresolved, every further delivery is refused.
        assert circuit.allow() == (False, False)
        assert circuit.allow() == (False, False)
        circuit.record_success()
        assert circuit.state is BreakerState.CLOSED
        assert circuit.allow() == (True, False)

    def test_half_open_probe_failure_clears_latch_and_reopens(self):
        from repro.pubsub.broker import (
            BreakerState,
            CircuitBreakerConfig,
            SinkCircuit,
        )

        circuit = SinkCircuit(
            CircuitBreakerConfig(failure_threshold=1, cooldown_skips=1)
        )
        circuit.record_failure()
        circuit.allow()  # burn the cooldown skip
        assert circuit.allow() == (True, True)
        circuit.record_failure()  # probe failed
        assert circuit.state is BreakerState.OPEN
        assert circuit.allow() == (False, False)  # fresh cooldown window
        # The next window's probe is admitted again (latch was cleared).
        assert circuit.allow() == (True, True)

    def test_realtime_dispatch_isolated_too(self):
        from repro.pubsub.broker import Broker, DeliveryMode
        from repro.pubsub.subscriptions import SubscriptionStore
        from repro.pubsub.topics import Publication, Topic, TopicKind

        store = SubscriptionStore()
        topic = Topic(TopicKind.FRIEND, 9)
        store.subscribe(1, topic)
        broker = Broker(subscriptions=store, default_mode=DeliveryMode.REALTIME)
        seen: list[int] = []
        broker.add_sink(lambda n: (_ for _ in ()).throw(RuntimeError("boom")))
        broker.add_sink(lambda n: seen.append(n.recipient_id))
        notifications = broker.publish(
            Publication(topic=topic, publisher_id=9, timestamp=1.0)
        )
        assert len(notifications) == 1
        assert seen == [1]
        assert broker.stats.sink_errors == 1


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestChaosEndToEnd:
    """Full-harness chaos runs: 20% disconnects plus a failing sink.

    Acceptance: the run completes with zero unhandled exceptions, bytes
    are conserved (delivered + refunded + dead-lettered == debited), and
    the failure metrics surface through :class:`ExperimentResult`.
    """

    def test_experiment_under_faults_conserves_bytes(self, seed):
        from repro.experiments.config import ExperimentConfig, Method, MethodSpec
        from repro.experiments.reporting import render_failure_stats
        from repro.experiments.runner import UtilityAnnotations, run_experiment
        from repro.experiments.workloads import eval_workload

        workload = eval_workload("small")
        config = ExperimentConfig(
            weekly_budget_mb=5.0,
            seed=seed,
            use_oracle_utility=True,
            faults=FaultConfig(
                p_disconnect=0.2, p_timeout=0.05, p_corrupt=0.02, p_reject=0.03
            ),
        )
        annotations = UtilityAnnotations.train(workload, oracle=True)
        result = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            config,
            annotations,
            workload.top_users(6),
        )
        failures = result.failures
        assert failures.attempts > 0
        assert failures.failed_attempts > 0
        assert failures.fault_counts.get("disconnect", 0) > 0
        assert failures.refunded_bytes <= failures.debited_bytes + 1e-6
        assert failures.conservation_error() < 1e-3
        # The report renders without blowing up and flags conservation ok.
        assert "conservation" in render_failure_stats(failures)
        assert "VIOLATED" not in render_failure_stats(failures)

    def test_faults_off_matches_seed_behaviour(self, seed):
        """faults=None must reproduce the atomic path bit-for-bit."""
        from repro.experiments.config import ExperimentConfig, Method, MethodSpec
        from repro.experiments.runner import UtilityAnnotations, run_experiment
        from repro.experiments.workloads import eval_workload

        workload = eval_workload("small")
        annotations = UtilityAnnotations.train(workload, oracle=True)
        users = workload.top_users(4)
        config = ExperimentConfig(
            weekly_budget_mb=5.0, seed=seed, use_oracle_utility=True
        )
        baseline = run_experiment(
            workload, MethodSpec(Method.UTIL, 3), config, annotations, users
        )
        again = run_experiment(
            workload, MethodSpec(Method.UTIL, 3), config, annotations, users
        )
        assert baseline.aggregate.row() == again.aggregate.row()
        assert baseline.failures.attempts == 0
        assert baseline.failures.dead_letters == 0
