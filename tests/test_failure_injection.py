"""Failure-injection tests: degenerate devices, dead batteries, outages.

The scheduler must degrade gracefully -- hold items, roll budget over, and
recover -- rather than crash or leak queue state, under:

* a device that never connects;
* a long outage followed by reconnection (burst drain);
* a battery that is dead for the whole horizon (no energy replenishment);
* an empty round stream (no arrivals at all);
* items whose ladder is just {not sent, metadata}.
"""

import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind, Presentation, PresentationLadder
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import NetworkState, TraceConnectivity

LADDER = build_audio_ladder()
ROUND = 3600.0


def make_scheduler(network_states, battery_level=0.8, charging=False, theta=500_000.0):
    device = MobileDevice(
        user_id=1,
        network=TraceConnectivity(network_states),
        battery=BatteryTrace(
            [BatterySample(0.0, battery_level, charging=charging)]
        ),
    )
    return RichNoteScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


def make_item(item_id, created_at=0.0, ladder=LADDER):
    return ContentItem(
        item_id=item_id,
        user_id=1,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=ladder,
        content_utility=0.6,
    )


class TestPermanentOutage:
    def test_items_held_forever_without_crash(self):
        scheduler = make_scheduler([NetworkState.OFF])
        for item_id in range(5):
            scheduler.enqueue(make_item(item_id))
        for round_index in range(1, 20):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            assert result.deliveries == []
        assert scheduler.pending_items == 5
        # Budget accumulated untouched for 19 rounds.
        assert scheduler.data_budget.available == pytest.approx(19 * 500_000.0)


class TestOutageRecovery:
    def test_burst_drain_after_reconnect(self):
        states = [NetworkState.OFF] * 5 + [NetworkState.CELL]
        scheduler = make_scheduler(states, theta=300_000.0)
        for item_id in range(4):
            scheduler.enqueue(make_item(item_id))
        deliveries = []
        for round_index in range(1, 7):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            deliveries.extend(result.deliveries)
        # Everything drains in the reconnect round, with rolled-over budget
        # affording rich presentations.
        assert len(deliveries) == 4
        assert all(d.time == 6 * ROUND for d in deliveries)
        assert max(d.level for d in deliveries) >= 3


class TestDeadBattery:
    def test_energy_budget_starves_but_data_flow_continues(self):
        """Below 5% charge e(t)=0: P(t) drains to 0 and stays there.

        The energy term then maximally penalizes expensive presentations,
        but the (soft) Lyapunov constraint must not deadlock delivery.
        """
        scheduler = make_scheduler(
            [NetworkState.CELL], battery_level=0.03, charging=False
        )
        delivered = 0
        for round_index in range(1, 6):
            scheduler.enqueue(make_item(round_index, created_at=round_index * ROUND - 1))
            result = scheduler.run_round(round_index * ROUND, ROUND)
            delivered += len(result.deliveries)
        assert delivered == 5
        # No replenishment ever accepted: P(t) only drains.
        assert scheduler.energy_budget.available <= 3000.0


class TestEmptyStream:
    def test_rounds_without_arrivals_are_noops(self):
        scheduler = make_scheduler([NetworkState.CELL])
        for round_index in range(1, 10):
            result = scheduler.run_round(round_index * ROUND, ROUND)
            assert result.deliveries == []
            assert result.queue_length_after == 0
            assert result.backlog_bytes_after == 0.0


class TestMinimalLadder:
    def test_metadata_only_ladder_schedulable(self):
        tiny = PresentationLadder(
            [
                Presentation(0, 0, 0.0),
                Presentation(1, 200, 1.0, "metadata"),
            ]
        )
        scheduler = make_scheduler([NetworkState.CELL], theta=1000.0)
        scheduler.enqueue(make_item(1, ladder=tiny))
        result = scheduler.run_round(ROUND, ROUND)
        assert [d.level for d in result.deliveries] == [1]

    def test_mixed_ladders_in_one_queue(self):
        """Items with different ladder shapes coexist in one MCKP round."""
        tiny = PresentationLadder(
            [Presentation(0, 0, 0.0), Presentation(1, 200, 1.0)]
        )
        scheduler = make_scheduler([NetworkState.CELL], theta=10_000_000.0)
        scheduler.enqueue(make_item(1, ladder=tiny))
        scheduler.enqueue(make_item(2, ladder=LADDER))
        result = scheduler.run_round(ROUND, ROUND)
        levels = {d.item.item_id: d.level for d in result.deliveries}
        assert levels[1] == 1
        assert levels[2] == LADDER.max_level
