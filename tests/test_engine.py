"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda s: fired.append("b"))
        sim.schedule_at(1.0, lambda s: fired.append("a"))
        sim.schedule_at(9.0, lambda s: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule_at(3.0, lambda s, t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda s: s.schedule_at(2.0, lambda s2: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_schedule_after(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda s: s.schedule_after(2.0, lambda s2: times.append(s2.now)))
        sim.run()
        assert times == [6.0]
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda s: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(s):
            fired.append(s.now)
            if s.now < 3:
                s.schedule_at(s.now + 1, chain)

        sim.schedule_at(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda s: fired.append(1))
        sim.schedule_at(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()  # the remaining event still fires later
        assert fired == [1, 10]

    def test_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_guard(self):
        sim = Simulator()

        def forever(s):
            s.schedule_at(s.now + 1, forever)

        sim.schedule_at(0.0, forever)
        sim.run(max_events=25)
        assert sim.processed_events == 25


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, lambda s: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule_at(1.0, lambda s: None)
        sim.schedule_at(2.0, lambda s: None)
        first.cancel()
        assert sim.peek_next_time() == 2.0


class TestPeriodic:
    def test_periodic_fires_on_schedule(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(10.0, lambda s: times.append(s.now), start=10.0, until=45.0)
        sim.run()
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_periodic_requires_positive_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda s: None)

    def test_periodic_sees_state_between_rounds(self):
        sim = Simulator()
        counter = {"arrivals": 0, "seen": []}
        sim.schedule_at(5.0, lambda s: counter.__setitem__("arrivals", 1))
        sim.schedule_periodic(
            4.0,
            lambda s: counter["seen"].append(counter["arrivals"]),
            start=4.0,
            until=9.0,
        )
        sim.run()
        assert counter["seen"] == [0, 1]
