"""Tests for the layered runtime: kernels, registry, policies, round loop.

The parity classes pin the refactor's contract: a :class:`RoundLoop` with a
registry-resolved policy must reproduce the pre-refactor schedulers *bit
for bit* -- the golden aggregates and delivery-sequence digests below were
captured from the monolithic ``core.scheduler`` implementation before the
runtime split, on the seeded small workload.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.lyapunov import LyapunovConfig, LyapunovController, LyapunovState
from repro.core.mckp import MckpInstance, MckpItem, select_presentations
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.runtime import kernels, registry
from repro.runtime.loop import RoundLoop
from repro.runtime.policy import (
    FixedLevelPolicy,
    RichNotePolicy,
    RoundContext,
    RoundDecision,
    SchedulerPolicy,
)
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()
ROUND = 3600.0


def make_device(user_id=1):
    battery = BatteryTrace([BatterySample(time=0.0, level=1.0, charging=True)])
    return MobileDevice(
        user_id=user_id, network=CellularOnlyNetwork(), battery=battery
    )


def make_item(item_id, utility=0.5, user_id=1, created_at=0.0):
    return ContentItem(
        item_id=item_id,
        user_id=user_id,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=LADDER,
        content_utility=utility,
    )


def make_loop(policy_name="richnote", theta=10_000_000.0, kappa=3000.0, **params):
    return RoundLoop(
        device=make_device(),
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=kappa),
        utility_model=CombinedUtilityModel(),
        policy=registry.create(policy_name, **params),
    )


class TestKernels:
    def test_gradient_is_profit_per_byte(self):
        assert kernels.gradient([0, 100, 300], [0.0, 2.0, 5.0], 0) == 0.02
        assert kernels.gradient([0, 100, 300], [0.0, 2.0, 5.0], 1) == 0.015

    def test_combined_utility_matrix_outer_product(self):
        matrix = kernels.combined_utility_matrix([0.5, 1.0], [0.0, 2.0, 3.0])
        assert matrix.tolist() == [[0.0, 1.0, 1.5], [0.0, 2.0, 3.0]]

    def test_combined_utility_matrix_per_item_rows(self):
        rows = [[0.0, 1.0], [0.0, 4.0]]
        matrix = kernels.combined_utility_matrix([2.0, 0.5], rows)
        assert matrix.tolist() == [[0.0, 2.0], [0.0, 2.0]]

    def test_exp_decay_column_bit_identical_to_aging_policy(self):
        aging = ExponentialAging(tau_seconds=7200.0)
        contents = [0.3, 0.9, 0.123456789]
        ages = [0.0, 1800.0, 86_400.0]
        column = kernels.exp_decay_column(contents, ages, 7200.0)
        for got, content, age in zip(column.tolist(), contents, ages):
            assert got == aging.decay(content, age)

    def test_lyapunov_matrix_bit_identical_to_scalar_controller(self):
        config = LyapunovConfig(v=1000.0, kappa_joules=3000.0)
        controller = LyapunovController(config)
        state = LyapunovState(q_bytes=1_234_567.0, p_joules=2_500.0)
        utilities = [[0.0, 0.2, 0.5, 0.9], [0.0, 0.05, 0.1, 0.4]]
        energies = [0.0, 1.5, 4.0, 9.5]
        backlog = 321_000.0
        matrix = kernels.lyapunov_adjusted_matrix(
            np.asarray(utilities),
            energies,
            [backlog, backlog],
            q_bytes=state.q_bytes,
            p_joules=state.p_joules,
            kappa_joules=config.kappa_joules,
            v=config.v,
            size_scale=config.size_scale,
            energy_scale=config.energy_scale,
        )
        for row, utility_row in zip(matrix.tolist(), utilities):
            assert row == controller.adjusted_profile(
                state, backlog, energies, utility_row
            )

    def test_greedy_select_matches_object_mckp(self):
        sizes = tuple(LADDER.size(level) for level in range(LADDER.max_level + 1))
        profits_rows = [
            tuple(0.9 * LADDER.utility(level) for level in range(len(sizes))),
            tuple(0.2 * LADDER.utility(level) for level in range(len(sizes))),
            tuple(0.1 * LADDER.utility(level) for level in range(len(sizes))),
        ]
        budget = 101_000
        legacy = select_presentations(
            MckpInstance(
                items=tuple(
                    MckpItem(key=key, sizes=sizes, profits=profits)
                    for key, profits in enumerate(profits_rows)
                ),
                budget=budget,
            )
        )
        levels, total_size, total_profit = kernels.greedy_select(
            [0, 1, 2], [sizes] * 3, profits_rows, budget
        )
        assert levels == [legacy.levels[key] for key in (0, 1, 2)]
        assert total_size == legacy.total_size
        assert total_profit == legacy.total_profit

    def test_greedy_select_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="unique"):
            kernels.greedy_select(
                [7, 7], [[0, 10]] * 2, [[0.0, 1.0]] * 2, budget=100
            )

    def test_unaffordable_upgrade_freezes_only_that_item(self):
        # Item 0's first upgrade costs 90, item 1's costs 10: with budget
        # 20 the big item freezes but the cheap one still upgrades.
        levels, total_size, _ = kernels.greedy_select(
            [0, 1],
            [[0, 90], [0, 10, 20]],
            [[0.0, 9.0], [0.0, 0.5, 0.8]],
            budget=20,
        )
        assert levels == [0, 2]
        assert total_size == 20

    def test_hull_levels_drops_dominated_and_lp_dominated(self):
        sizes = [0, 10, 20, 30]
        # Level 2's profit dips below level 1 (dominated); level 1 then
        # sits under the chord 0 -> 3 (LP-dominated after the dip? no --
        # its gradient is the steepest), so survivors are 0, 1, 3.
        profits = [0.0, 5.0, 4.0, 6.0]
        assert kernels.hull_levels(sizes, profits) == [0, 1, 3]

    def test_greedy_select_hull_maps_levels_back(self):
        sizes = [0, 10, 20, 30]
        profits = [0.0, 1.0, 1.1, 6.0]  # level 3 only reachable via hull
        levels, _, _ = kernels.greedy_select_hull(
            [0], [sizes], [profits], budget=30
        )
        assert levels == [3]


class TestRegistry:
    def test_builtins_registered(self):
        assert registry.available() == ["fifo", "richnote", "util"]

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            registry.create("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @registry.register("richnote")
            class Shadow:
                pass

    def test_register_create_unregister_roundtrip(self):
        @registry.register("everything-at-2")
        class EverythingAtTwo(FixedLevelPolicy):
            def __init__(self):
                super().__init__(fixed_level=2)

            def order_items(self, items, now, utility_model):
                return list(items)

        try:
            policy = registry.create("everything-at-2")
            assert isinstance(policy, EverythingAtTwo)
            assert isinstance(policy, SchedulerPolicy)
        finally:
            registry.unregister("everything-at-2")
        with pytest.raises(ValueError):
            registry.get("everything-at-2")


class TestRoundLoopComposition:
    def test_loop_without_policy_raises_on_select(self):
        loop = RoundLoop(
            device=make_device(),
            data_budget=DataBudget(theta_bytes=1_000_000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0),
            utility_model=CombinedUtilityModel(),
        )
        loop.enqueue(make_item(1))
        with pytest.raises(NotImplementedError, match="bind a SchedulerPolicy"):
            loop.run_round(ROUND, ROUND)

    def test_phase_order_is_ingest_replenish_select_deliver(self):
        assert RoundLoop.phase_names == (
            "ingest",
            "replenish",
            "select",
            "deliver",
        )

    def test_custom_policy_object_drives_the_loop(self):
        class MetadataOnly:
            """Deliver everything, always at level 1."""

            def select(self, ctx: RoundContext) -> RoundDecision:
                return RoundDecision(
                    selections=[(item, 1) for item in ctx.items]
                )

        loop = RoundLoop(
            device=make_device(),
            data_budget=DataBudget(theta_bytes=10_000_000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0),
            utility_model=CombinedUtilityModel(),
            policy=MetadataOnly(),
        )
        loop.enqueue(make_item(1, utility=0.9))
        loop.enqueue(make_item(2, utility=0.1))
        result = loop.run_round(ROUND, ROUND)
        assert sorted(d.level for d in result.deliveries) == [1, 1]

    def test_richnote_policy_kappa_must_match_energy_budget(self):
        with pytest.raises(ValueError, match="kappa must match"):
            make_loop(
                "richnote",
                kappa=3000.0,
                lyapunov=LyapunovConfig(kappa_joules=1000.0),
            )

    def test_context_snapshot_carries_queue_and_budgets(self):
        loop = make_loop("fifo", fixed_level=1)
        loop.enqueue(make_item(1))
        loop.run_round(ROUND, ROUND)  # drains the item
        loop.enqueue(make_item(2, created_at=ROUND))
        context = loop.make_context(now=2 * ROUND, effective_budget=500)
        assert context.effective_budget == 500
        assert [item.item_id for item in context.items] == []  # still incoming

    def test_fifo_and_util_policies_order_differently(self):
        fifo = make_loop("fifo", fixed_level=1, theta=30_000.0)
        util = make_loop("util", fixed_level=1, theta=30_000.0)
        # Budget affords one metadata message only (metadata ~ LADDER.size(1)).
        for loop in (fifo, util):
            loop.enqueue(make_item(1, utility=0.1, created_at=0.0))
            loop.enqueue(make_item(2, utility=0.9, created_at=100.0))
        fifo_budget_one = DataBudget(theta_bytes=float(LADDER.size(1)))
        fifo.data_budget = fifo_budget_one
        util.data_budget = DataBudget(theta_bytes=float(LADDER.size(1)))
        fifo_result = fifo.run_round(ROUND, ROUND)
        util_result = util.run_round(ROUND, ROUND)
        assert [d.item.item_id for d in fifo_result.deliveries] == [1]
        assert [d.item.item_id for d in util_result.deliveries] == [2]


class TestScalarArrayParity:
    """The array fast path and the per-object path agree exactly."""

    def _decision(self, use_subclass_model: bool) -> RoundDecision:
        if use_subclass_model:

            class SubclassModel(CombinedUtilityModel):
                """Defeats the exact-type fast-path guard; same numbers."""

        model = (
            SubclassModel() if use_subclass_model else CombinedUtilityModel()
        )
        loop = RoundLoop(
            device=make_device(),
            data_budget=DataBudget(theta_bytes=200_000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0),
            utility_model=model,
            policy=registry.create("richnote"),
        )
        for item_id, utility in enumerate([0.9, 0.4, 0.7, 0.05], start=1):
            loop.enqueue(make_item(item_id, utility=utility))
        loop.run_round(ROUND, ROUND)  # ingest; budget replenished once
        context = loop.make_context(now=2 * ROUND, effective_budget=150_000)
        return loop.policy.select(context)

    def test_array_and_object_paths_pick_identical_levels(self):
        fast = self._decision(use_subclass_model=False)
        slow = self._decision(use_subclass_model=True)
        assert [
            (item.item_id, level) for item, level in fast.selections
        ] == [(item.item_id, level) for item, level in slow.selections]
        assert fast.total_size == slow.total_size
        assert fast.total_profit == slow.total_profit


# -- golden parity against the pre-refactor monolith ---------------------------
#
# Regenerated after `_build_device` switched from `hash((seed, user_id))`
# to the explicit integer mix (`_device_stream_seed`).  The values came
# out unchanged: on the CELL_ONLY golden workload the energy budget is
# never binding (0.67 kJ spent vs a 3 kJ/round kappa), so the reseeded
# battery traces cannot alter selections.  MARKOV-mode outcomes *do*
# change under the new seeding (the network chain consumes the stream
# directly); no goldens pin those.

GOLDEN_AGGREGATES = {
    "RichNote": {
        "avg_utility": 0.0200710407,
        "clicked_utility": 3.4420892998,
        "delay_s": 1713.6964052299,
        "delivered_mb": 5.6848,
        "delivery_ratio": 1.0,
        "energy_kj": 0.6707890625,
        "precision": 0.1718837838,
        "recall": 0.7172780797,
        "total_utility": 8.3208507344,
    },
    "FIFO-L2": {
        "avg_utility": 0.0184595638,
        "clicked_utility": 0.241073045,
        "delay_s": 66083.1376988806,
        "delivered_mb": 5.6112,
        "delivery_ratio": 0.1351681764,
        "energy_kj": 0.3329921875,
        "precision": 0.0,
        "recall": 0.0,
        "total_utility": 1.0337355726,
    },
    "UTIL-L3": {
        "avg_utility": 0.2685807561,
        "clicked_utility": 3.3478911001,
        "delay_s": 5638.0714884005,
        "delivered_mb": 5.6056,
        "delivery_ratio": 0.0675840882,
        "energy_kj": 0.2348554687,
        "precision": 0.25,
        "recall": 0.0665987319,
        "total_utility": 7.52026117,
    },
}

GOLDEN_DELIVERY_DIGESTS = {
    "RichNote": (
        424,
        "4254e54c2f6ea57ebe672ca12ca0a94b058473bf6a5660ebdc8e026a8c6776b4",
    ),
    "FIFO-L2": (
        56,
        "c311816d407f3c62ae02165efd2855118fd0e77b2bf665f80c0acc524206b601",
    ),
    "UTIL-L3": (
        28,
        "80275c33b8aeb17aa4d56f06409ba03b5cd8560b0d539d06b38f56247af14303",
    ),
}


@pytest.fixture(scope="module")
def golden_world():
    from repro.experiments.config import ExperimentConfig, Method, MethodSpec
    from repro.experiments.runner import UtilityAnnotations
    from repro.experiments.workloads import workload_spec
    from repro.trace.generator import build_workload

    workload = build_workload(workload_spec("small", seed=11))
    config = ExperimentConfig(weekly_budget_mb=5.0, seed=11)
    annotations = UtilityAnnotations.train(workload, seed=11)
    users = workload.top_users(4)
    specs = [
        MethodSpec(Method.RICHNOTE),
        MethodSpec(Method.FIFO, 2),
        MethodSpec(Method.UTIL, 3),
    ]
    return workload, config, annotations, users, specs


class TestGoldenParity:
    """Seeded runs through the registry match the pre-refactor monolith."""

    def test_aggregates_match_pre_refactor_capture(self, golden_world):
        from repro.experiments.runner import run_experiment

        workload, config, annotations, users, specs = golden_world
        for spec in specs:
            result = run_experiment(workload, spec, config, annotations, users)
            row = {k: round(v, 10) for k, v in result.aggregate.row().items()}
            assert row == GOLDEN_AGGREGATES[spec.label], spec.label

    def test_delivery_sequences_match_pre_refactor_digest(
        self, golden_world, monkeypatch
    ):
        from repro.experiments import runner

        workload, config, annotations, users, specs = golden_world
        by_user = {user_id: [] for user_id in users}
        for record in workload.records:
            if record.recipient_id in by_user:
                by_user[record.recipient_id].append(record)
        duration = workload.config.duration_hours * 3600.0

        captured = []
        original = runner.compute_user_metrics

        def spy(user_id, records, deliveries):
            captured.extend(deliveries)
            return original(user_id, records, deliveries)

        monkeypatch.setattr(runner, "compute_user_metrics", spy)

        for spec in specs:
            captured.clear()
            for user_id in users:
                if by_user[user_id]:
                    runner.run_user(
                        user_id, by_user[user_id], spec, config, annotations,
                        duration,
                    )
            digest = hashlib.sha256()
            for d in captured:
                digest.update(
                    repr(
                        (
                            d.time,
                            d.user_id,
                            d.item.item_id,
                            d.level,
                            d.size_bytes,
                            d.energy_joules,
                            d.utility,
                        )
                    ).encode()
                )
            assert (len(captured), digest.hexdigest()) == (
                GOLDEN_DELIVERY_DIGESTS[spec.label]
            ), spec.label

    def test_columnar_engine_reproduces_golden_digests(
        self, golden_world, monkeypatch
    ):
        """The struct-of-arrays engine hits the same pinned digests.

        This is the ISSUE 8 tentpole contract: the columnar cohort path
        is a drop-in for the per-user object loop on the golden seeded
        workloads -- not approximately, but digest-for-digest.
        """
        from repro.experiments import columnar

        workload, config, annotations, users, specs = golden_world
        by_user = {user_id: [] for user_id in users}
        for record in workload.records:
            if record.recipient_id in by_user:
                by_user[record.recipient_id].append(record)
        pairs = [(u, by_user[u]) for u in users if by_user[u]]
        duration = workload.config.duration_hours * 3600.0

        captured = []
        original = columnar.compute_user_metrics

        def spy(user_id, records, deliveries):
            captured.extend(deliveries)
            return original(user_id, records, deliveries)

        monkeypatch.setattr(columnar, "compute_user_metrics", spy)

        for spec in specs:
            captured.clear()
            columnar.run_users_columnar(
                pairs, spec, config, annotations, duration
            )
            digest = hashlib.sha256()
            for d in captured:
                digest.update(
                    repr(
                        (
                            d.time,
                            d.user_id,
                            d.item.item_id,
                            d.level,
                            d.size_bytes,
                            d.energy_joules,
                            d.utility,
                        )
                    ).encode()
                )
            assert (len(captured), digest.hexdigest()) == (
                GOLDEN_DELIVERY_DIGESTS[spec.label]
            ), spec.label
