"""Determinism tests: identical seeds must produce identical results.

Reproducibility is a first-class requirement for a paper-reproduction
repository: every stochastic component (catalog, graph, interactions,
connectivity, battery, classifier) draws from explicitly seeded streams,
so whole experiments must be bit-identical across runs.
"""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec, NetworkMode
from repro.experiments.runner import UtilityAnnotations, run_experiment
from repro.experiments.workloads import eval_workload, workload_spec
from repro.trace.generator import build_workload
from repro.trace.io import read_trace, write_trace


class TestWorkloadDeterminism:
    def test_same_spec_same_records(self):
        spec = workload_spec("small", seed=41)
        a = build_workload(spec)
        b = build_workload(spec)
        assert [r.to_dict() for r in a.records] == [r.to_dict() for r in b.records]

    def test_different_seed_differs(self):
        a = build_workload(workload_spec("small", seed=41))
        b = build_workload(workload_spec("small", seed=42))
        assert [r.to_dict() for r in a.records] != [r.to_dict() for r in b.records]

    def test_serialization_preserves_everything(self, tmp_path):
        workload = build_workload(workload_spec("small", seed=41))
        path = tmp_path / "trace.jsonl.gz"  # exercises the gzip path
        write_trace(path, workload.records)
        assert read_trace(path) == workload.records


class TestExperimentDeterminism:
    @pytest.mark.parametrize(
        "network_mode", [NetworkMode.CELL_ONLY, NetworkMode.MARKOV]
    )
    def test_same_config_same_results(self, network_mode):
        workload = eval_workload("small")
        annotations = UtilityAnnotations.train(workload, seed=9)
        config = ExperimentConfig(
            weekly_budget_mb=5.0, network_mode=network_mode, seed=9
        )
        users = workload.top_users(4)
        first = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        second = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        assert first.aggregate.row() == second.aggregate.row()
        assert first.aggregate.level_mix == second.aggregate.level_mix

    def test_classifier_training_deterministic(self):
        workload = eval_workload("small")
        a = UtilityAnnotations.train(workload, seed=9)
        b = UtilityAnnotations.train(workload, seed=9)
        assert a.scores == b.scores

    def test_classifier_seed_changes_scores(self):
        workload = eval_workload("small")
        a = UtilityAnnotations.train(workload, seed=9)
        b = UtilityAnnotations.train(workload, seed=10)
        assert a.scores != b.scores


class TestLyapunovDiagnostics:
    def test_history_recorded_and_bounded(self):
        """L(t) stays bounded under sustained arrivals (queue stability)."""
        from repro.core.budgets import DataBudget, EnergyBudget
        from repro.core.content import ContentItem, ContentKind
        from repro.core.presentations import build_audio_ladder
        from repro.core.scheduler import RichNoteScheduler
        from repro.sim.battery import BatterySample, BatteryTrace
        from repro.sim.device import MobileDevice
        from repro.sim.network import CellularOnlyNetwork

        ladder = build_audio_ladder()
        device = MobileDevice(
            user_id=1,
            network=CellularOnlyNetwork(),
            battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
        )
        scheduler = RichNoteScheduler(
            device=device,
            data_budget=DataBudget(theta_bytes=50_000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0),
        )
        for round_index in range(1, 50):
            now = round_index * 3600.0
            for offset in range(3):
                scheduler.enqueue(
                    ContentItem(
                        item_id=round_index * 10 + offset,
                        user_id=1,
                        kind=ContentKind.FRIEND_FEED,
                        created_at=now - 1.0,
                        ladder=ladder,
                        content_utility=0.5,
                    )
                )
            scheduler.run_round(now, 3600.0)
        history = scheduler.lyapunov_history
        assert len(history) == 49
        # Stability: the tail is no worse than the warm-up peak.
        assert max(history[10:]) <= max(history[:10]) + 1e-9
