"""Tests for the figure data producers and text reporting."""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.figures import (
    figure3_and_4,
    figure5a_fixed_levels,
    figure5b_presentation_mix,
    figure5d_user_categories,
    paper_method_specs,
    v_sensitivity,
)
from repro.experiments.reporting import (
    render_level_mix,
    render_sensitivity,
    render_series_table,
    render_user_categories,
)
from repro.experiments.runner import UtilityAnnotations
from repro.experiments.workloads import eval_workload
from repro.experiments.config import NetworkMode

BUDGETS = (2.0, 20.0)


@pytest.fixture(scope="module")
def workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=1)


@pytest.fixture(scope="module")
def users(workload):
    return workload.top_users(4)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(seed=1)


class TestPaperSpecs:
    def test_five_methods(self):
        labels = [spec.label for spec in paper_method_specs()]
        assert labels == ["RichNote", "FIFO-L2", "UTIL-L2", "FIFO-L3", "UTIL-L3"]


class TestFigure34:
    def test_all_series_produced(self, workload, annotations, users, config):
        figs = figure3_and_4(
            workload, BUDGETS, config, annotations, users,
            specs=[MethodSpec(Method.RICHNOTE), MethodSpec(Method.UTIL, 3)],
        )
        assert set(figs) == {
            "fig3a_delivery_ratio",
            "fig3b_delivered_mb",
            "fig3c_recall",
            "fig3d_precision",
            "fig4a_total_utility",
            "fig4b_clicked_utility",
            "fig4c_energy_kj",
            "fig4d_delay_s",
        }
        for series in figs.values():
            assert set(series.series) == {"RichNote", "UTIL-L3"}
            for label in series.series:
                assert len(series.row(label)) == len(BUDGETS)

    def test_tables_render(self, workload, annotations, users, config):
        figs = figure3_and_4(
            workload, BUDGETS, config, annotations, users,
            specs=[MethodSpec(Method.RICHNOTE)],
        )
        text = render_series_table(figs["fig3a_delivery_ratio"])
        assert "RichNote" in text
        assert "2MB" in text and "20MB" in text


class TestFigure5:
    def test_fig5a_includes_all_fixed_levels(
        self, workload, annotations, users, config
    ):
        series = figure5a_fixed_levels(
            workload, BUDGETS, config, annotations, users, max_level=4
        )
        assert set(series.series) == {"RichNote", "UTIL-L2", "UTIL-L3", "UTIL-L4"}

    def test_fig5b_mix_fractions_sum_to_one(
        self, workload, annotations, users, config
    ):
        series = figure5b_presentation_mix(
            workload, BUDGETS, config, annotations, users
        )
        for budget in BUDGETS:
            assert sum(series.mix[budget].values()) == pytest.approx(1.0)
        assert "L1" in render_level_mix(series)

    def test_fig5b_richer_levels_with_more_budget(
        self, workload, annotations, users, config
    ):
        series = figure5b_presentation_mix(
            workload, (1.0, 50.0), config, annotations, users
        )
        rich_low = sum(
            frac for level, frac in series.mix[1.0].items() if level >= 4
        )
        rich_high = sum(
            frac for level, frac in series.mix[50.0].items() if level >= 4
        )
        assert rich_high > rich_low

    def test_fig5c_markov_runs(self, workload, annotations, users, config):
        series = figure5b_presentation_mix(
            workload, (5.0,), config, annotations, users,
            network_mode=NetworkMode.MARKOV,
        )
        assert series.figure == "fig5c"
        assert series.mix[5.0]

    def test_fig5d_buckets_cover_users(self, workload, annotations, users, config):
        points = figure5d_user_categories(
            workload, config, annotations, users, n_buckets=3
        )
        assert points
        assert sum(p.user_count for p in points) == len(users)
        assert "fig5d" in render_user_categories(points)


class TestSensitivity:
    def test_v_sweep(self, workload, annotations, users, config):
        points = v_sensitivity(
            workload, (10.0, 1000.0), config, annotations, users
        )
        assert [p.v for p in points] == [10.0, 1000.0]
        for point in points:
            assert point.delivery_ratio > 0
        assert "V" in render_sensitivity(points)
