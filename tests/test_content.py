"""Tests for content items and presentation ladders."""

import pytest

from repro.core.content import ContentItem, ContentKind, Presentation, PresentationLadder


def make_ladder():
    return PresentationLadder(
        [
            Presentation(0, 0, 0.0, "none"),
            Presentation(1, 200, 0.01, "meta"),
            Presentation(2, 100_200, 0.26, "5s"),
            Presentation(3, 200_200, 0.50, "10s"),
        ]
    )


class TestPresentation:
    def test_level_zero_must_be_empty(self):
        with pytest.raises(ValueError):
            Presentation(0, 100, 0.0)
        with pytest.raises(ValueError):
            Presentation(0, 0, 0.5)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            Presentation(-1, 0, 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Presentation(1, -5, 0.1)

    def test_negative_utility_rejected(self):
        with pytest.raises(ValueError):
            Presentation(1, 5, -0.1)

    def test_valid_presentation(self):
        p = Presentation(2, 1000, 0.5, "demo")
        assert p.level == 2
        assert p.size_bytes == 1000


class TestPresentationLadder:
    def test_ladder_orders_by_level(self):
        ladder = PresentationLadder(
            [
                Presentation(1, 200, 0.01),
                Presentation(0, 0, 0.0),
                Presentation(2, 400, 0.5),
            ]
        )
        assert [p.level for p in ladder] == [0, 1, 2]

    def test_missing_level_zero_rejected(self):
        with pytest.raises(ValueError):
            PresentationLadder([Presentation(1, 200, 0.1)])

    def test_gap_in_levels_rejected(self):
        with pytest.raises(ValueError):
            PresentationLadder(
                [Presentation(0, 0, 0.0), Presentation(2, 400, 0.5)]
            )

    def test_sizes_must_strictly_increase(self):
        with pytest.raises(ValueError, match="sizes must strictly increase"):
            PresentationLadder(
                [
                    Presentation(0, 0, 0.0),
                    Presentation(1, 200, 0.01),
                    Presentation(2, 200, 0.5),
                ]
            )

    def test_utilities_must_strictly_increase(self):
        with pytest.raises(ValueError, match="utilities must strictly increase"):
            PresentationLadder(
                [
                    Presentation(0, 0, 0.0),
                    Presentation(1, 200, 0.5),
                    Presentation(2, 400, 0.5),
                ]
            )

    def test_lookup_and_max_level(self):
        ladder = make_ladder()
        assert ladder.max_level == 3
        assert ladder.size(2) == 100_200
        assert ladder.utility(3) == 0.50
        assert len(ladder) == 4

    def test_out_of_range_lookup(self):
        ladder = make_ladder()
        with pytest.raises(IndexError):
            ladder[4]
        with pytest.raises(IndexError):
            ladder[-1]

    def test_total_size_sums_all_presentations(self):
        ladder = make_ladder()
        assert ladder.total_size() == 0 + 200 + 100_200 + 200_200

    def test_is_concave_for_diminishing_gains(self):
        # gains: 0.01, 0.25, 0.24 -> first pair violates diminishing returns
        assert not make_ladder().is_concave()
        concave = PresentationLadder(
            [
                Presentation(0, 0, 0.0),
                Presentation(1, 100, 0.5),
                Presentation(2, 200, 0.8),
                Presentation(3, 300, 0.9),
            ]
        )
        assert concave.is_concave()


class TestContentItem:
    def test_combined_utility_is_product(self):
        item = ContentItem(
            item_id=1,
            user_id=7,
            kind=ContentKind.FRIEND_FEED,
            created_at=0.0,
            ladder=make_ladder(),
            content_utility=0.5,
        )
        assert item.combined_utility(3) == pytest.approx(0.25)
        assert item.combined_utility(0) == 0.0

    def test_content_utility_bounds(self):
        with pytest.raises(ValueError):
            ContentItem(
                item_id=1,
                user_id=7,
                kind=ContentKind.FRIEND_FEED,
                created_at=0.0,
                ladder=make_ladder(),
                content_utility=1.5,
            )
