"""Benchmark: the persistent sweep engine vs the sequential cell loop.

Three gates pin the execution engine's contract (ISSUE 5):

* **Throughput** -- scheduling the whole (policy, budget) grid onto one
  persistent :class:`~repro.experiments.pool.ExperimentPool` is >= 2x
  faster wall-clock than the sequential ``sweep_budgets`` loop on a
  multi-core runner (skipped on single-core machines, where there is no
  parallelism to win).
* **Boundary** -- after pool init, a (cell, batch) task ships only the
  method spec, config and user ids: kilobytes, no notification records.
* **Determinism** -- grid aggregates and per-user delivery digests are
  bit-identical between the two engines.

Every run (re)writes ``BENCH_sweep.json`` at the repo root -- the
machine-readable perf trajectory (stage wall-clock per cell) that CI
uploads as an artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.pool import ExperimentPool, sweep_budgets_parallel
from repro.experiments.runner import (
    UtilityAnnotations,
    run_user,
    sweep_budgets,
)
from repro.experiments.shards import shard_by_user
from repro.experiments.timing import SweepTelemetry
from repro.experiments.workloads import eval_workload

BUDGETS = (2.0, 5.0, 20.0)
SPECS = (
    MethodSpec(Method.RICHNOTE),
    MethodSpec(Method.FIFO, 2),
    MethodSpec(Method.UTIL, 3),
)
# The benchmark population: the busiest half of the medium workload by
# default (BENCH_sweep.json used to be recorded at a pinned 10 users,
# which measured pool overhead more than simulation).  Override with
# BENCH_SWEEP_USERS for smoke runs.
N_USERS = int(os.environ.get("BENCH_SWEEP_USERS", "30"))
BENCH_OUT = Path(
    os.environ.get(
        "BENCH_SWEEP_OUT", Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    )
)


@pytest.fixture(scope="module")
def sweep_workload():
    return eval_workload("small")


@pytest.fixture(scope="module")
def sweep_annotations(sweep_workload):
    return UtilityAnnotations.train(sweep_workload, seed=23)


@pytest.fixture(scope="module")
def sweep_users(sweep_workload):
    return sweep_workload.top_users(N_USERS)


@pytest.fixture(scope="module")
def base_config():
    return ExperimentConfig(seed=23)


def test_grid_parity_and_telemetry(
    sweep_workload, sweep_annotations, sweep_users, base_config
):
    """Pool grid == sequential grid bit for bit; BENCH_sweep.json lands."""
    sequential = sweep_budgets(
        sweep_workload, SPECS, BUDGETS, base_config, sweep_annotations,
        sweep_users,
    )
    telemetry = SweepTelemetry()
    parallel = sweep_budgets_parallel(
        sweep_workload, SPECS, BUDGETS, base_config, sweep_annotations,
        sweep_users, keep_per_user=False, telemetry=telemetry,
    )
    assert set(parallel) == set(sequential)
    for key in sequential:
        assert parallel[key].aggregate == sequential[key].aggregate, key

    payload = telemetry.write(BENCH_OUT)
    assert payload["schema"] == "richnote-bench-sweep/2"
    assert payload["totals"]["cells"] == len(SPECS) * len(BUDGETS)
    assert payload["totals"]["users"] == N_USERS
    assert {"train", "shard"} <= set(payload["stages_s"])
    for cell in payload["cells"]:
        assert {"simulate", "aggregate"} <= set(cell["stages_s"])
    print(f"\n# wrote {BENCH_OUT} ({payload['totals']['cells']} cells)")


def test_per_user_digests_bit_identical(
    sweep_workload, sweep_annotations, sweep_users, base_config
):
    config = base_config.with_budget(5.0)
    spec = MethodSpec(Method.RICHNOTE)
    with ExperimentPool(
        sweep_workload, annotations=sweep_annotations, user_ids=sweep_users
    ) as pool:
        cell = pool.run_cell(spec, config, digest_deliveries=True)
    by_user = shard_by_user(sweep_workload.records, sweep_users)
    duration = sweep_workload.config.duration_hours * 3600.0
    for outcome in cell.per_user:
        user_id = outcome.metrics.user_id
        twin = run_user(
            user_id, by_user[user_id], spec, config, sweep_annotations,
            duration, digest_deliveries=True,
        )
        assert outcome.delivery_digest == twin.delivery_digest, user_id


def test_cell_payload_excludes_records_after_init(
    sweep_workload, sweep_annotations, sweep_users, base_config
):
    with ExperimentPool(
        sweep_workload, annotations=sweep_annotations, user_ids=sweep_users
    ) as pool:
        for index in range(len(pool.batches)):
            payload = pool.cell_payload(
                MethodSpec(Method.RICHNOTE), base_config, batch_index=index
            )
            assert b"NotificationRecord" not in payload
            assert b"trace.records" not in payload
            assert len(payload) < 8_192


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="single-core runner: no parallelism to measure",
)
def test_pool_sweep_at_least_2x_faster_than_sequential(
    sweep_workload, sweep_annotations, sweep_users, base_config
):
    # Warm both paths (numpy imports, forest caches) outside the clock.
    warm = (SPECS[0],)
    sweep_budgets(
        sweep_workload, warm, (5.0,), base_config, sweep_annotations, sweep_users
    )
    sweep_budgets_parallel(
        sweep_workload, warm, (5.0,), base_config, sweep_annotations,
        sweep_users, keep_per_user=False,
    )

    start = time.perf_counter()
    sweep_budgets(
        sweep_workload, SPECS, BUDGETS, base_config, sweep_annotations,
        sweep_users,
    )
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    sweep_budgets_parallel(
        sweep_workload, SPECS, BUDGETS, base_config, sweep_annotations,
        sweep_users, keep_per_user=False,
    )
    parallel_s = time.perf_counter() - start

    speedup = sequential_s / parallel_s
    print(
        f"\n# {len(SPECS) * len(BUDGETS)}-cell grid x {N_USERS} users: "
        f"sequential {sequential_s:.2f} s, pool {parallel_s:.2f} s "
        f"({os.cpu_count()} cores), speedup {speedup:.1f}x"
    )
    if BENCH_OUT.exists():
        trajectory = json.loads(BENCH_OUT.read_text())
        trajectory.setdefault("meta", {})["speedup_vs_sequential"] = round(
            speedup, 3
        )
        trajectory["meta"]["sequential_s"] = round(sequential_s, 6)
        trajectory["meta"]["parallel_s"] = round(parallel_s, 6)
        BENCH_OUT.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    assert speedup >= 2.0, (
        f"pool sweep only {speedup:.2f}x over sequential "
        f"({sequential_s:.2f} s -> {parallel_s:.2f} s)"
    )
