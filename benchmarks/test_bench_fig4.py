"""Benchmark: Figure 4 -- utility, clicked-utility, energy, queuing delay.

Same (method x budget) grid as Figure 3.  Expected shapes (paper):
* 4(a) RichNote's aggregate delivered utility tops both baselines at every
  budget, reaching ~2x at the 100 MB point (where it delivers 40 s
  previews against the baselines' fixed 5/10 s);
* 4(b) the ordering also holds restricted to clicked items;
* 4(c) RichNote's energy stays steady and bounded by the kappa-derived
  weekly allowance (3 kJ/h x 168 h); baselines' energy never exceeds it
  either at our scale, but RichNote's does not blow up despite moving more
  bytes;
* 4(d) RichNote's queuing delay stays within ~a round; baselines backlog
  for hours-to-days at starved budgets.
"""

from repro.experiments.figures import figure3_and_4
from repro.experiments.reporting import render_series_table

BUDGETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)
BASELINES = ("FIFO-L2", "FIFO-L3", "UTIL-L2", "UTIL-L3")


def test_bench_fig4(benchmark, workload, annotations, bench_users):
    figs = benchmark.pedantic(
        lambda: figure3_and_4(
            workload, BUDGETS, annotations=annotations, user_ids=bench_users
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for name in (
        "fig4a_total_utility",
        "fig4b_clicked_utility",
        "fig4c_energy_kj",
        "fig4d_delay_s",
    ):
        print(render_series_table(figs[name], precision=1))
        print()

    utility = figs["fig4a_total_utility"].series
    clicked = figs["fig4b_clicked_utility"].series
    energy = figs["fig4c_energy_kj"].series
    delay = figs["fig4d_delay_s"].series

    # 4(a): RichNote at or above every baseline at every budget (a single
    # <=7% dip in the mid-budget crossover pocket is tolerated -- see
    # EXPERIMENTS.md), winning outright at most budgets and by >=1.5x at
    # the generous end.
    wins = 0
    for budget in BUDGETS:
        richnote = utility["RichNote"][budget]
        best_baseline = max(utility[b][budget] for b in BASELINES)
        assert richnote >= best_baseline * 0.93
        if richnote >= best_baseline:
            wins += 1
    assert wins >= 5
    best_baseline_at_100 = max(utility[b][100.0] for b in BASELINES)
    assert utility["RichNote"][100.0] > 1.5 * best_baseline_at_100

    # 4(b): ordering holds among clicked items at the generous end.
    assert clicked["RichNote"][100.0] > max(clicked[b][100.0] for b in BASELINES)

    # 4(c): energy bounded by the kappa-derived weekly allowance.
    weekly_allowance_kj = 3.0 * 168.0  # kappa = 3 kJ/h for one week
    for budget in BUDGETS:
        assert energy["RichNote"][budget] < weekly_allowance_kj * len(bench_users)

    # 4(d): RichNote delivers within ~a round; baselines backlog when starved.
    for budget in BUDGETS:
        assert delay["RichNote"][budget] < 2 * 3600.0
    assert delay["UTIL-L3"][2.0] > 4 * delay["RichNote"][2.0]
    assert delay["FIFO-L3"][2.0] > delay["UTIL-L3"][2.0]
