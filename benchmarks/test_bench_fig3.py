"""Benchmark: Figure 3 -- delivery ratio, data delivered, recall, precision.

Methods: RichNote vs FIFO/UTIL fixed at 5 s (L2) and 10 s (L3) previews,
swept over weekly data budgets of 1-100 MB (Section V-D1).

Expected shapes (paper):
* 3(a) RichNote delivers ~100% at every budget; baselines ramp up with
  budget (higher fixed level => slower ramp);
* 3(b) RichNote moves at least as many bytes as the baselines at low
  budgets (presentation adaptation fills the budget);
* 3(c) RichNote recall dominates;
* 3(d) RichNote precision at or above baselines, plateauing near the trace
  click base-rate because RichNote delivers everything.
"""

from repro.experiments.figures import figure3_and_4
from repro.experiments.reporting import render_series_table

BUDGETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def test_bench_fig3(benchmark, workload, annotations, bench_users):
    figs = benchmark.pedantic(
        lambda: figure3_and_4(
            workload, BUDGETS, annotations=annotations, user_ids=bench_users
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for name in (
        "fig3a_delivery_ratio",
        "fig3b_delivered_mb",
        "fig3c_recall",
        "fig3d_precision",
    ):
        print(render_series_table(figs[name]))
        print()

    delivery = figs["fig3a_delivery_ratio"].series
    recall = figs["fig3c_recall"].series
    precision = figs["fig3d_precision"].series

    for budget in BUDGETS:
        # 3(a): RichNote ~100% everywhere; baselines starve at low budget.
        assert delivery["RichNote"][budget] > 0.95
        # 3(c): recall dominance.
        for baseline in ("FIFO-L2", "FIFO-L3", "UTIL-L2", "UTIL-L3"):
            assert recall["RichNote"][budget] >= recall[baseline][budget] - 0.02
    assert delivery["FIFO-L3"][1.0] < 0.3
    assert delivery["UTIL-L3"][1.0] < 0.3
    # Baselines ramp with budget and the cheaper level ramps faster.
    assert delivery["FIFO-L3"][100.0] > delivery["FIFO-L3"][1.0]
    assert delivery["FIFO-L2"][5.0] >= delivery["FIFO-L3"][5.0]
    # 3(d): RichNote precision above FIFO at starved budgets.
    assert precision["RichNote"][2.0] > precision["FIFO-L3"][2.0]
