"""Scalability micro-benchmarks of the hot paths.

The paper's motivation is scale ("daily bandwidth consumption ... is
around 2TB", millions of users), and its Section V-C argues per-user
rounds shard to a parallel backend.  These benches time the three hot
paths a deployment cares about and pin asymptotic expectations:

* broker fan-out throughput (publications/second at realistic fan-out);
* one scheduler round as the scheduling queue grows (the MCKP heap is
  near-linear in queue size);
* Random Forest inference throughput (online scoring of notifications).
"""

import random

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.pubsub.broker import Broker, DeliveryMode
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()


def test_bench_broker_fanout(benchmark):
    """1k publications x fan-out 20 through subscription matching."""
    store = SubscriptionStore()
    n_topics, fanout = 100, 20
    user = 0
    for topic_id in range(n_topics):
        topic = Topic(TopicKind.FRIEND, topic_id + 10_000)
        for _ in range(fanout):
            store.subscribe(user % 2000, topic)
            user += 1
    broker = Broker(store, default_mode=DeliveryMode.ROUND)
    rng = random.Random(0)
    publications = [
        Publication(
            topic=Topic(TopicKind.FRIEND, rng.randrange(n_topics) + 10_000),
            publisher_id=99_999,
            timestamp=float(i),
            payload={"track_id": i},
        )
        for i in range(1000)
    ]

    def fan_out():
        total = 0
        for publication in publications:
            total += len(broker.publish(publication))
        broker.flush()
        return total

    total = benchmark(fan_out)
    assert total == 1000 * fanout


def _make_scheduler():
    device = MobileDevice(
        user_id=1,
        network=CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
    )
    return RichNoteScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=5_000_000.0),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


def _fill(scheduler, n_items, seed=0):
    rng = random.Random(seed)
    for item_id in range(n_items):
        scheduler.enqueue(
            ContentItem(
                item_id=item_id,
                user_id=1,
                kind=ContentKind.FRIEND_FEED,
                created_at=0.0,
                ladder=LADDER,
                content_utility=rng.random(),
            )
        )


def test_bench_round_with_large_queue(benchmark):
    """One Lyapunov-MCKP round over a 5000-item scheduling queue."""

    def run():
        scheduler = _make_scheduler()
        _fill(scheduler, 5000)
        return scheduler.run_round(3600.0, 3600.0)

    result = benchmark(run)
    assert result.deliveries


def test_bench_round_scaling(benchmark):
    """Round latency grows near-linearly with queue size (heap selection)."""
    import time

    def measure(n_items):
        scheduler = _make_scheduler()
        _fill(scheduler, n_items)
        start = time.perf_counter()
        scheduler.run_round(3600.0, 3600.0)
        return time.perf_counter() - start

    def run():
        return {n: measure(n) for n in (500, 2000, 8000)}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Scheduler round latency vs queue size")
    for n_items, seconds in timings.items():
        print(f"  {n_items:>6} items: {seconds * 1000:8.1f} ms")
    # Sub-quadratic: 16x items must cost far less than 256x time.
    assert timings[8000] < 64 * max(timings[500], 1e-4)


def test_bench_forest_inference(benchmark, workload, annotations):
    """Online scoring throughput of the trained content-utility forest."""
    import numpy as np

    from repro.ml.dataset import FeatureExtractor, build_training_set
    from repro.ml.forest import RandomForestClassifier

    extractor = FeatureExtractor()
    x, y = build_training_set(workload.records, extractor)
    forest = RandomForestClassifier(
        n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=0
    ).fit(x[:2000], y[:2000])
    batch = np.asarray(x[:1000], dtype=float)

    proba = benchmark(forest.predict_proba, batch)
    assert proba.shape == (1000, 2)
