"""Scalability benchmarks: hot-path micro-benches + the population curve.

The paper's motivation is scale ("daily bandwidth consumption ... is
around 2TB", millions of users), and its Section V-C argues per-user
rounds shard to a parallel backend.  Two families live here:

* micro-benchmarks of the three hot paths a deployment cares about --
  broker fan-out, one scheduler round vs queue size (near-linear MCKP
  heap), Random Forest inference throughput;
* the ISSUE 8 population curve: columnar struct-of-arrays execution vs
  the per-user object loop at 10k and 100k users (1M opt-in), written to
  ``BENCH_scalability.json`` with a hard >= 5x users/sec/core gate at
  the 10k-user point (the population the issue names).  ISSUE 10 adds
  two scenario gates at the same point: multi-core shard-parallel
  execution >= 1.8x over single-core (only on machines that actually
  have >= 2 cores) and the multichannel batched kernel path >= 3x over
  the per-user adapter fallback -- both only ever reported over
  digest-verified bit-identical runs (the bench raises on divergence).

Environment knobs for the curve (CI smoke runs tiny populations):

* ``BENCH_SCALE_USERS`` -- comma list of population sizes
  (default ``10000,100000``);
* ``BENCH_SCALE_OUT`` -- output path (default repo-root
  ``BENCH_scalability.json``);
* ``BENCH_SCALE_WORKERS`` -- worker count for the multi-core scenario
  (default: affinity-aware core count; < 2 skips the scenario);
* ``BENCH_SCALE_MC_SAMPLE`` -- users in the multichannel scenario
  (default 1000, ``0`` disables);
* ``BENCH_SCALE_1M=1`` -- additionally run the 1M-user smoke.
"""

import os
import random
from pathlib import Path

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.pubsub.broker import Broker, DeliveryMode
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()


def test_bench_broker_fanout(benchmark):
    """1k publications x fan-out 20 through subscription matching."""
    store = SubscriptionStore()
    n_topics, fanout = 100, 20
    user = 0
    for topic_id in range(n_topics):
        topic = Topic(TopicKind.FRIEND, topic_id + 10_000)
        for _ in range(fanout):
            store.subscribe(user % 2000, topic)
            user += 1
    broker = Broker(store, default_mode=DeliveryMode.ROUND)
    rng = random.Random(0)
    publications = [
        Publication(
            topic=Topic(TopicKind.FRIEND, rng.randrange(n_topics) + 10_000),
            publisher_id=99_999,
            timestamp=float(i),
            payload={"track_id": i},
        )
        for i in range(1000)
    ]

    def fan_out():
        total = 0
        for publication in publications:
            total += len(broker.publish(publication))
        broker.flush()
        return total

    total = benchmark(fan_out)
    assert total == 1000 * fanout


def _make_scheduler():
    device = MobileDevice(
        user_id=1,
        network=CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
    )
    return RichNoteScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=5_000_000.0),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


def _fill(scheduler, n_items, seed=0):
    rng = random.Random(seed)
    for item_id in range(n_items):
        scheduler.enqueue(
            ContentItem(
                item_id=item_id,
                user_id=1,
                kind=ContentKind.FRIEND_FEED,
                created_at=0.0,
                ladder=LADDER,
                content_utility=rng.random(),
            )
        )


def test_bench_round_with_large_queue(benchmark):
    """One Lyapunov-MCKP round over a 5000-item scheduling queue."""

    def run():
        scheduler = _make_scheduler()
        _fill(scheduler, 5000)
        return scheduler.run_round(3600.0, 3600.0)

    result = benchmark(run)
    assert result.deliveries


def test_bench_round_scaling(benchmark):
    """Round latency grows near-linearly with queue size (heap selection)."""
    import time

    def measure(n_items):
        scheduler = _make_scheduler()
        _fill(scheduler, n_items)
        start = time.perf_counter()
        scheduler.run_round(3600.0, 3600.0)
        return time.perf_counter() - start

    def run():
        return {n: measure(n) for n in (500, 2000, 8000)}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Scheduler round latency vs queue size")
    for n_items, seconds in timings.items():
        print(f"  {n_items:>6} items: {seconds * 1000:8.1f} ms")
    # Sub-quadratic: 16x items must cost far less than 256x time.
    assert timings[8000] < 64 * max(timings[500], 1e-4)


def test_bench_forest_inference(benchmark, workload, annotations):
    """Online scoring throughput of the trained content-utility forest."""
    import numpy as np

    from repro.ml.dataset import FeatureExtractor, build_training_set
    from repro.ml.forest import RandomForestClassifier

    extractor = FeatureExtractor()
    x, y = build_training_set(workload.records, extractor)
    forest = RandomForestClassifier(
        n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=0
    ).fit(x[:2000], y[:2000])
    batch = np.asarray(x[:1000], dtype=float)

    proba = benchmark(forest.predict_proba, batch)
    assert proba.shape == (1000, 2)


# -- the ISSUE 8 population curve ----------------------------------------------

SCALE_OUT = Path(
    os.environ.get(
        "BENCH_SCALE_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_scalability.json",
    )
)
#: The acceptance gates bind at the population the issue names (the 10k
#: point): CI smoke runs tiny cohorts where per-call overheads dominate,
#: and far larger cohorts trade some of the win back to cache pressure,
#: so only points in the [10k, 50k) band carry the floors.
GATE_MIN_USERS = 10_000
GATE_MAX_USERS = 50_000
GATE_SPEEDUP = 5.0
#: ISSUE 10: multi-core shard-parallel >= 1.8x over single-core (needs a
#: machine with >= 2 affinity cores to mean anything) and the batched
#: multichannel kernels >= 3x over the per-user adapter path.
GATE_MULTI_CORE_SPEEDUP = 1.8
GATE_MULTICHANNEL_SPEEDUP = 3.0


def _scale_user_counts() -> list[int]:
    raw = os.environ.get("BENCH_SCALE_USERS", "10000,100000")
    counts = [int(c) for c in raw.split(",") if c.strip()]
    if os.environ.get("BENCH_SCALE_1M") == "1":
        counts.append(1_000_000)
    return counts


def test_bench_scale_curve():
    """Columnar vs per-user users/sec/core curve -> BENCH_scalability.json.

    Digest parity -- scalar vs columnar on a user sample, single- vs
    multi-core on the whole store, batched vs adapter on the
    multichannel sample -- is asserted inside
    :func:`repro.experiments.scale.bench_scale`; a divergent fast path
    fails here before any speed number is reported.
    """
    from repro.experiments.scale import SCHEMA, bench_scale, write_scale_report

    from repro.experiments.pool import available_cores

    counts = _scale_user_counts()
    workers_env = os.environ.get("BENCH_SCALE_WORKERS")
    workers = int(workers_env) if workers_env else None
    if workers is not None and workers >= 2 and available_cores() < 2:
        # Same guard as test_bench_sweep's skipif: on a single-core
        # runner a forced multi-core scenario measures pure process
        # overhead, not parallelism -- drop back to the default.
        print("\n# single-core runner: skipping the multi-core scenario")
        workers = None
    mc_sample = int(os.environ.get("BENCH_SCALE_MC_SAMPLE", "1000"))
    payload = bench_scale(
        counts, workers=workers, multichannel_sample=mc_sample
    )
    write_scale_report(SCALE_OUT, payload)

    assert payload["schema"] == SCHEMA
    assert len(payload["curve"]) == len(counts)
    assert payload["meta"]["cores_available"] >= 1
    assert payload["meta"]["cores_used"] >= 1
    multi_core_machine = payload["meta"]["cores_available"] >= 2
    print(f"\n# wrote {SCALE_OUT} ({len(counts)} populations)")
    for point in payload["curve"]:
        assert point["parity_checked_users"] > 0
        print(
            f"#  {point['users']:>8} users: columnar "
            f"{point['columnar']['users_per_sec_per_core']:.0f} u/s/core, "
            f"scalar {point['scalar']['users_per_sec_per_core']:.0f} "
            f"u/s/core, speedup {point['speedup']:.1f}x"
        )
        in_gate_band = GATE_MIN_USERS <= point["population"] < GATE_MAX_USERS
        if in_gate_band:
            assert point["speedup"] >= GATE_SPEEDUP, (
                f"columnar only {point['speedup']:.2f}x over the per-user "
                f"loop at {point['population']} users (gate {GATE_SPEEDUP}x)"
            )
        multi = point.get("multi_core")
        if multi is not None:
            assert multi["digest_parity_users"] == point["users"]
            print(
                f"#    multi-core x{multi['workers']}: "
                f"{multi['speedup_vs_single_core']:.2f}x vs single-core"
            )
            # The 1.8x floor needs real parallel hardware: on a
            # single-core runner the scenario (if forced via
            # BENCH_SCALE_WORKERS) measures pure process overhead.
            if in_gate_band and multi_core_machine:
                assert multi["speedup_vs_single_core"] >= GATE_MULTI_CORE_SPEEDUP, (
                    f"shard-parallel only "
                    f"{multi['speedup_vs_single_core']:.2f}x over "
                    f"single-core at {point['population']} users "
                    f"(gate {GATE_MULTI_CORE_SPEEDUP}x)"
                )
        multichannel = point.get("multichannel")
        if multichannel is not None:
            assert multichannel["kernel_path"] == "batched"
            assert multichannel["fallback_path"] == "adapter"
            assert (
                multichannel["digest_parity_users"]
                == multichannel["sampled_users"]
            )
            print(
                f"#    multichannel ({multichannel['sampled_users']} "
                f"users): {multichannel['speedup']:.2f}x batched vs adapter"
            )
            if in_gate_band:
                assert multichannel["speedup"] >= GATE_MULTICHANNEL_SPEEDUP, (
                    f"batched multichannel kernels only "
                    f"{multichannel['speedup']:.2f}x over the adapter "
                    f"path at {point['population']} users "
                    f"(gate {GATE_MULTICHANNEL_SPEEDUP}x)"
                )
