"""Seed-robustness benchmark: do the headline claims survive new worlds?

Every other bench pins one seed.  This one regenerates the entire
synthetic world (catalog, graph, trace, labels, classifier) under three
different seeds and checks the paper's core ordering claims hold in every
replicate -- the reproduction's answer to "did you just get lucky with
your random trace?".
"""

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.confidence import (
    compare_replicated,
    dominates_across_seeds,
)

SEEDS = (301, 502, 703)


def test_bench_seed_robustness(benchmark):
    config = ExperimentConfig(weekly_budget_mb=5.0)
    specs = [
        MethodSpec(Method.RICHNOTE),
        MethodSpec(Method.UTIL, 3),
        MethodSpec(Method.FIFO, 3),
    ]

    def run():
        return {
            metric: compare_replicated(
                specs, config, SEEDS, metric=metric, top_users=8
            )
            for metric in ("delivery_ratio", "recall", "delay_s")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"# Seed robustness over worlds {list(SEEDS)} (5MB budget)")
    for metric, summaries in results.items():
        print(f"-- {metric}")
        for label, summary in summaries.items():
            print(
                f"   {label:<10} mean={summary.mean:10.3f} "
                f"std={summary.std:9.3f} "
                f"range=[{summary.minimum:.3f}, {summary.maximum:.3f}]"
            )

    # Delivery ratio and recall: RichNote's worst world beats the
    # baselines' best worlds.
    for metric in ("delivery_ratio", "recall"):
        summaries = results[metric]
        for baseline in ("UTIL-L3", "FIFO-L3"):
            assert dominates_across_seeds(
                summaries["RichNote"], summaries[baseline]
            ), f"{metric}: RichNote vs {baseline} not seed-robust"
    # Queuing delay: RichNote's worst is below the baselines' best.
    delay = results["delay_s"]
    for baseline in ("UTIL-L3", "FIFO-L3"):
        assert delay["RichNote"].maximum < delay[baseline].minimum
