"""Benchmark: content-utility classifier (Section V-A).

Regenerates the paper's classifier-quality numbers: five-fold
cross-validated precision and accuracy of the Random Forest trained on
clicked-vs-hovered records.  Paper reports precision 0.700, accuracy 0.689
on the real Spotify trace; the synthetic trace carries comparable
irreducible noise, so the values should land in the same band (0.6-0.75),
well above the majority-class base rate.
"""

import numpy as np

from repro.ml.crossval import cross_validate
from repro.ml.dataset import build_training_set, class_balance
from repro.ml.forest import RandomForestClassifier


def _train_and_validate(workload):
    x, y = build_training_set(workload.records)
    rng = np.random.default_rng(97)
    if len(x) > 4000:
        keep = rng.choice(len(x), size=4000, replace=False)
        x, y = x[keep], y[keep]
    result = cross_validate(
        lambda: RandomForestClassifier(
            n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=97
        ),
        x,
        y,
        n_folds=5,
        random_state=97,
    )
    return x, y, result


def test_bench_classifier_cv(benchmark, workload):
    x, y, result = benchmark.pedantic(
        lambda: _train_and_validate(workload), rounds=1, iterations=1
    )
    base_rate = max(class_balance(y), 1 - class_balance(y))
    print()
    print("# Section V-A: content-utility classifier (5-fold CV)")
    print(f"training samples: {len(x)}  positive rate: {class_balance(y):.3f}")
    print(f"paper:    precision=0.700 accuracy=0.689")
    print(
        f"measured: precision={result.precision:.3f} "
        f"accuracy={result.accuracy:.3f} recall={result.recall:.3f}"
    )
    # Shape assertions: meaningfully above chance, in the paper's band.
    assert result.accuracy > base_rate + 0.01
    assert 0.5 < result.precision <= 1.0
    assert 0.55 < result.accuracy <= 1.0


def test_bench_classifier_vs_logistic(benchmark, workload):
    """Model-family ablation: Random Forest vs logistic regression.

    The synthetic ground truth is itself logistic in the features, so the
    linear model is a strong baseline here; the bench documents how much
    (or little) the ensemble buys on this feature space, and asserts both
    clear the chance bar.
    """
    from repro.ml.logistic import LogisticRegressionClassifier

    def run():
        x, y = build_training_set(workload.records)
        rng = np.random.default_rng(97)
        if len(x) > 3000:
            keep = rng.choice(len(x), size=3000, replace=False)
            x, y = x[keep], y[keep]
        forest = cross_validate(
            lambda: RandomForestClassifier(
                n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=97
            ),
            x, y, n_folds=5, random_state=97,
        )
        logistic = cross_validate(
            lambda: LogisticRegressionClassifier(n_iterations=250),
            x, y, n_folds=5, random_state=97,
        )
        return y, forest, logistic

    y, forest, logistic = benchmark.pedantic(run, rounds=1, iterations=1)
    base_rate = max(class_balance(y), 1 - class_balance(y))
    print()
    print("# Model-family ablation (5-fold CV)")
    print(f"base rate:           {base_rate:.3f}")
    print(f"random forest:       {forest.summary()}")
    print(f"logistic regression: {logistic.summary()}")
    assert forest.accuracy > base_rate
    assert logistic.accuracy > base_rate
    # On a logistic ground truth the two land within a few points.
    assert abs(forest.accuracy - logistic.accuracy) < 0.1


def test_bench_classifier_calibration(benchmark, workload):
    """U_c is used as a probability (Eq. 1): check the forest's calibration.

    Held-out Brier score must beat the base-rate constant predictor, and
    the expected calibration error should stay within a few points -- leaf
    averaging across bootstrapped trees is a decent implicit calibrator.
    """
    from repro.ml.calibration import (
        brier_score,
        calibration_curve,
        expected_calibration_error,
        render_reliability,
    )

    def run():
        x, y = build_training_set(workload.records)
        split = int(0.7 * len(x))
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=97
        ).fit(x[:split], y[:split])
        probabilities = forest.predict_proba(x[split:])[:, 1]
        held_out = y[split:]
        return held_out, probabilities, float(y[:split].mean())

    held_out, probabilities, train_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    constant = np.full(len(held_out), train_rate)
    bins = calibration_curve(held_out, probabilities, n_bins=8)
    print()
    print("# Content-utility probability calibration (held-out 30%)")
    print(render_reliability(bins))
    brier = brier_score(held_out, probabilities)
    ece = expected_calibration_error(held_out, probabilities, n_bins=8)
    print(f"brier={brier:.3f} (constant predictor {brier_score(held_out, constant):.3f})  "
          f"ECE={ece:.3f}")
    assert brier < brier_score(held_out, constant)
    assert ece < 0.15


def test_bench_feature_importances(benchmark, workload):
    """Which features carry the click signal (Section V-A's families).

    The latent ground truth loads on social ties, popularity and time of
    day; the trained forest's split-frequency importances should recover
    that ordering -- the social/popularity families must outrank the
    publication-kind one-hots (which carry no independent signal).
    """
    from repro.ml.dataset import FEATURE_NAMES

    def run():
        x, y = build_training_set(workload.records)
        rng = np.random.default_rng(97)
        if len(x) > 4000:
            keep = rng.choice(len(x), size=4000, replace=False)
            x, y = x[keep], y[keep]
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=8, min_samples_leaf=5, random_state=97
        ).fit(x, y)
        return forest.feature_importances()

    importances = benchmark.pedantic(run, rounds=1, iterations=1)
    ranked = sorted(
        zip(FEATURE_NAMES, importances), key=lambda pair: -pair[1]
    )
    print()
    print("# Content-utility feature importances (split-frequency)")
    for name, weight in ranked:
        print(f"  {name:<18} {weight:.3f}")
    by_name = dict(zip(FEATURE_NAMES, importances))
    social = by_name["tie_strength"]
    popularity = max(
        by_name["track_popularity"],
        by_name["album_popularity"],
        by_name["artist_popularity"],
    )
    kind_onehots = max(
        by_name["kind_friend"], by_name["kind_artist"], by_name["kind_playlist"]
    )
    assert social > kind_onehots
    assert popularity > kind_onehots
