"""Ablation benchmarks: round length and budget rollover (DESIGN.md Sec. 5).

* **Round length** -- Section II argues round duration should be "tuned ...
  proportional to the frequency of the feed".  Sweeping the round length at
  a fixed weekly budget shows the latency/batching trade-off: shorter
  rounds cut queuing delay; longer rounds pool arrivals (bigger selection
  pools, better-amortized radio overhead) at the cost of delay.
* **Rollover** -- Algorithm 2 lets unused budget roll over.  Capping the
  data budget at one round's allowance (no rollover) strands capacity in
  quiet rounds: delivered bytes and utility drop, most visibly for
  fixed-level baselines whose item size exceeds one round's theta.
"""

from dataclasses import replace

import pytest

from repro.core.baselines import UtilScheduler
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.scheduler import RichNoteScheduler
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import run_experiment


def test_bench_round_length(benchmark, workload, annotations, bench_users):
    lengths = (900.0, 3600.0, 4 * 3600.0)

    def run():
        rows = {}
        for round_seconds in lengths:
            config = replace(
                ExperimentConfig(weekly_budget_mb=10.0),
                round_seconds=round_seconds,
            )
            result = run_experiment(
                workload, MethodSpec(Method.RICHNOTE), config, annotations,
                bench_users,
            )
            rows[round_seconds] = (
                result.aggregate.mean_queuing_delay_s,
                result.aggregate.total_utility,
                result.aggregate.energy_kilojoules,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: round length (RichNote, 10MB/week)")
    print("round      delay_s   total_util  energy_kJ")
    for round_seconds, (delay, utility, energy) in rows.items():
        print(f"{round_seconds / 60:>5.0f}min {delay:>9.0f} {utility:>12.1f} "
              f"{energy:>10.2f}")
    delays = [rows[length][0] for length in lengths]
    # Delay scales with round length (items wait ~half a round).
    assert delays[0] < delays[1] < delays[2]
    assert delays[1] == pytest.approx(3600.0 / 2, rel=0.15)
    # Longer rounds amortize radio overhead across bigger batches.
    energies = [rows[length][2] for length in lengths]
    assert energies[2] < energies[0]


def test_bench_rollover(benchmark, workload, annotations, bench_users):
    """No-rollover ablation via the DataBudget cap, driven per user.

    The experiment harness always rolls over (Algorithm 2); here we rebuild
    the per-user replay with ``cap_bytes = theta`` to model a plan whose
    unused round allowance expires.
    """
    from repro.core.presentations import build_audio_ladder
    from repro.experiments.adapters import record_to_item
    from repro.experiments.runner import _build_device
    from repro.core.utility import CombinedUtilityModel, ExponentialAging
    from repro.sim.engine import Simulator

    config = ExperimentConfig(weekly_budget_mb=5.0)
    theta = config.theta_bytes_per_round
    duration = workload.config.duration_hours * 3600.0
    ladder = build_audio_ladder()

    def replay(policy: str, rollover: bool) -> tuple[int, float]:
        delivered = 0
        total_utility = 0.0
        for user_id in bench_users[:10]:
            records = workload.records_for_user(user_id)
            device = _build_device(user_id, config, duration)
            budget = DataBudget(
                theta_bytes=theta, cap_bytes=None if rollover else theta
            )
            energy = EnergyBudget(kappa_joules=config.kappa_joules_per_round)
            utility_model = CombinedUtilityModel(
                aging=ExponentialAging(config.aging_tau_seconds)
            )
            if policy == "richnote":
                scheduler = RichNoteScheduler(device, budget, energy, utility_model)
            else:
                scheduler = UtilScheduler(
                    device, budget, energy, fixed_level=3,
                    utility_model=utility_model,
                )
            simulator = Simulator()
            for record in records:
                item = record_to_item(record, ladder)
                item.content_utility = annotations.scores[record.notification_id]
                simulator.schedule_at(
                    item.created_at, lambda sim, it=item: scheduler.enqueue(it)
                )

            def tick(sim, s=scheduler):
                nonlocal delivered, total_utility
                result = s.run_round(sim.now, config.round_seconds)
                delivered += len(result.deliveries)
                total_utility += result.delivered_utility

            simulator.schedule_periodic(
                config.round_seconds, tick,
                start=config.round_seconds, until=duration + 1.0,
            )
            simulator.run(until=duration + 2.0)
        return delivered, total_utility

    def run():
        return {
            (policy, rollover): replay(policy, rollover)
            for policy in ("richnote", "util")
            for rollover in (True, False)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: budget rollover (5MB/week, 10 users)")
    print("policy     rollover   delivered   total_util")
    for (policy, rollover), (delivered, utility) in rows.items():
        print(f"{policy:<10} {str(rollover):<10} {delivered:>9} {utility:>12.1f}")
    # UTIL-L3's item size (200 KB) exceeds theta (~30 KB/round): without
    # rollover it can never afford a delivery.
    assert rows[("util", False)][0] == 0
    assert rows[("util", True)][0] > 0
    # RichNote degrades but keeps delivering (metadata fits every round).
    assert rows[("richnote", False)][0] > 0
    assert rows[("richnote", True)][1] >= rows[("richnote", False)][1]


def test_bench_energy_batching(benchmark):
    """Why round batching matters for energy: tail amortization.

    The Balasubramanian et al. model charges a fixed ramp+tail overhead per
    communication burst (3.5 J on 3G).  Delivering a round's notifications
    in one burst -- what the round-based model does -- pays it once; a
    push-per-notification design pays it every time.  For metadata-sized
    notifications the saving is the batch size (~30x here); for preview-
    sized payloads the per-byte cost dominates and batching saves little.
    """
    from repro.sim.energy import TransferEnergyModel
    from repro.sim.network import NetworkState

    model = TransferEnergyModel()
    sizes_metadata = [200.0] * 30  # 30 metadata notifications in a round
    sizes_previews = [200_200.0] * 30  # 30 ten-second previews

    def run():
        rows = {}
        for label, sizes in (("metadata", sizes_metadata),
                             ("10s-preview", sizes_previews)):
            per_item = sum(
                model.item_energy(NetworkState.CELL, s) for s in sizes
            )
            batched = model.batch_energy(NetworkState.CELL, sizes)
            rows[label] = (per_item, batched)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: per-item pushes vs one round burst (30 items, 3G)")
    print("payload        per-item J   batched J   saving")
    for label, (per_item, batched) in rows.items():
        print(f"{label:<14} {per_item:>10.1f} {batched:>11.1f} "
              f"{per_item / batched:>8.1f}x")
    meta_per_item, meta_batched = rows["metadata"]
    assert meta_per_item / meta_batched > 20  # tail dominates tiny payloads
    preview_per_item, preview_batched = rows["10s-preview"]
    assert preview_per_item / preview_batched < 2  # payload dominates big ones
