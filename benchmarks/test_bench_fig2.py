"""Benchmark: presentation-utility survey pipeline (Figure 2).

* Fig. 2(a) -- the attribute-grid survey is skyline-pruned: dominated
  (size, utility) combinations are discarded, leaving a monotone frontier
  of "useful" presentations (the paper kept 6 of 20).
* Fig. 2(b) -- the duration-stop survey CDF is fitted with the logarithmic
  (Eq. 8) and polynomial (Eq. 9) families; the logarithmic fit wins and
  its constants land near the published a = -0.397, b = 0.352.
"""

from repro.survey.fitting import select_best_fit
from repro.survey.pareto import pareto_frontier
from repro.survey.synthesis import (
    ratings_to_candidates,
    synthesize_duration_survey,
    synthesize_presentation_survey,
)


def test_bench_fig2a_skyline(benchmark):
    def run():
        ratings = synthesize_presentation_survey(n_respondents=200, seed=5)
        return ratings, pareto_frontier(ratings_to_candidates(ratings))

    ratings, frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Fig 2(a): useful presentations after skyline pruning")
    print(f"candidates: {len(ratings)}  useful: {len(frontier)} (paper: 20 -> 6)")
    for candidate in frontier:
        rate, duration = candidate.attributes
        print(
            f"  {rate:>2}kHz x {duration:>4.0f}s  "
            f"size={candidate.size_bytes / 1000:8.0f}KB  "
            f"utility={candidate.utility:.2f}"
        )
    assert len(frontier) < len(ratings)
    utilities = [c.utility for c in frontier]
    assert utilities == sorted(utilities)


def test_bench_fig2b_duration_fit(benchmark):
    # Probes strictly inside (0, 40): Eq. 9's polynomial family is
    # undefined at its horizon D = 40, so the comparison fits below it.
    probes = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 39.0]

    def run():
        survey = synthesize_duration_survey(n_respondents=80, seed=6)
        utilities = survey.utilities_at(probes)
        best, other = select_best_fit(probes, [max(u, 1e-6) for u in utilities])
        return utilities, best, other

    utilities, best, other = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Fig 2(b): duration-utility curve fits (80 respondents)")
    print(f"survey CDF at {probes}: "
          + " ".join(f"{u:.2f}" for u in utilities))
    print(f"best fit:  {best}")
    print(f"runner-up: {other}")
    print("paper: logarithmic util(d) = -0.397 + 0.352 log(1+d) wins")
    # Respondent-level bootstrap quantifies the n=80 sampling error.
    from repro.survey.bootstrap import bootstrap_duration_fit

    fit = bootstrap_duration_fit(
        synthesize_duration_survey(n_respondents=80, seed=6),
        probes, n_bootstrap=150, seed=6,
    )
    print(f"bootstrap 95% CI: a in [{fit.a_interval[0]:.3f}, "
          f"{fit.a_interval[1]:.3f}], b in [{fit.b_interval[0]:.3f}, "
          f"{fit.b_interval[1]:.3f}]")
    assert best.name == "logarithmic"
    a, b = best.params
    assert abs(a - (-0.397)) < 0.25  # 80 respondents => sampling noise
    assert abs(b - 0.352) < 0.1
    assert fit.contains_truth(-0.397, 0.352)


def test_bench_survey_convergence(benchmark):
    """The paper's future-work note, implemented: "A wide scale survey
    through crowdsourcing can give better results."

    Sweeping respondent count shows the fitted Eq. 8 constants converging
    to the population truth (a = -0.397, b = 0.352): parameter error
    shrinks as the panel grows.
    """
    from repro.survey.fitting import fit_logarithmic

    probes = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 39.0]
    panel_sizes = (20, 80, 400, 4000)

    def run():
        rows = {}
        for n in panel_sizes:
            errors = []
            for seed in range(5):
                survey = synthesize_duration_survey(n_respondents=n, seed=seed)
                utilities = [max(u, 1e-6) for u in survey.utilities_at(probes)]
                a, b = fit_logarithmic(probes, utilities).params
                errors.append(abs(a + 0.397) + abs(b - 0.352))
            rows[n] = sum(errors) / len(errors)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Survey-scale convergence of the Eq. 8 fit (|da| + |db|, 5 seeds)")
    for n, error in rows.items():
        print(f"  n={n:>5}: mean parameter error {error:.3f}")
    assert rows[4000] < rows[20]
    assert rows[4000] < 0.05
