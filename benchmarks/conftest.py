"""Shared fixtures for the figure-regeneration benchmarks.

All benchmarks run on the calibrated "medium" workload (60 users, one
simulated week -- the paper's trace span) and share one trained
content-utility annotation so every (method, budget) cell scores items
identically, as a deployed model would.
"""

import pytest

from repro.experiments.runner import UtilityAnnotations
from repro.experiments.workloads import eval_workload


@pytest.fixture(scope="session")
def workload():
    return eval_workload("medium")


@pytest.fixture(scope="session")
def annotations(workload):
    return UtilityAnnotations.train(workload, seed=97)


@pytest.fixture(scope="session")
def bench_users(workload):
    """The busiest 25 users -- the paper's 'top users' focus, bench-sized."""
    return workload.top_users(25)
