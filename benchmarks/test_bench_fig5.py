"""Benchmark: Figure 5 -- adaptation of RichNote.

* 5(a) RichNote vs UTIL fixed at every preview level: no single fixed
  level wins everywhere (short previews win at small budgets, long ones at
  large budgets); RichNote tracks/beats the upper envelope.
* 5(b) RichNote's presentation mix shifts from metadata-only toward rich
  previews as the budget grows.
* 5(c) with the WIFI/CELL/OFF Markov model, WiFi rounds admit more bytes,
  so richer presentations appear than under cellular-only at equal budget.
* 5(d) utility across user-volume categories: heavier users benefit more.
"""

from repro.experiments.config import NetworkMode
from repro.experiments.figures import (
    figure5a_fixed_levels,
    figure5b_presentation_mix,
    figure5d_user_categories,
)
from repro.experiments.reporting import (
    render_level_mix,
    render_series_table,
    render_user_categories,
)

BUDGETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def _rich_fraction(mix, min_level):
    return sum(frac for level, frac in mix.items() if level >= min_level)


def test_bench_fig5a_fixed_levels(benchmark, workload, annotations, bench_users):
    series = benchmark.pedantic(
        lambda: figure5a_fixed_levels(
            workload, BUDGETS, annotations=annotations, user_ids=bench_users
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_series_table(series, precision=1))
    fixed_labels = [label for label in series.series if label != "RichNote"]
    # RichNote tracks the upper envelope of all fixed levels at every
    # budget (<=7% dip tolerated in the crossover pocket) and sits clearly
    # above it at the starved and generous extremes.
    for budget in BUDGETS:
        envelope = max(series.series[label][budget] for label in fixed_labels)
        assert series.series["RichNote"][budget] >= envelope * 0.93
    for budget in (1.0, 100.0):
        envelope = max(series.series[label][budget] for label in fixed_labels)
        assert series.series["RichNote"][budget] >= envelope
    # No single fixed level dominates the others across budgets: the best
    # level at 1 MB differs from the best at 100 MB (crossover).
    best_low = max(fixed_labels, key=lambda l: series.series[l][1.0])
    best_high = max(fixed_labels, key=lambda l: series.series[l][100.0])
    print(f"best fixed level at 1MB: {best_low}; at 100MB: {best_high}")
    assert best_low != best_high


def test_bench_fig5b_presentation_mix(benchmark, workload, annotations, bench_users):
    series = benchmark.pedantic(
        lambda: figure5b_presentation_mix(
            workload, BUDGETS, annotations=annotations, user_ids=bench_users
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_level_mix(series))
    # Metadata-dominated at 1-3 MB; rich previews appear as budget grows.
    assert series.mix[1.0].get(1, 0.0) > 0.6
    assert _rich_fraction(series.mix[1.0], 5) < 0.1
    assert _rich_fraction(series.mix[100.0], 5) > 0.3
    rich = [_rich_fraction(series.mix[b], 4) for b in BUDGETS]
    assert rich[-1] > rich[0]


def test_bench_fig5c_wifi_mix(benchmark, workload, annotations, bench_users):
    budgets = (2.0, 10.0, 50.0)

    def run():
        cell = figure5b_presentation_mix(
            workload, budgets, annotations=annotations, user_ids=bench_users,
            network_mode=NetworkMode.CELL_ONLY,
        )
        wifi = figure5b_presentation_mix(
            workload, budgets, annotations=annotations, user_ids=bench_users,
            network_mode=NetworkMode.MARKOV,
        )
        return cell, wifi

    cell, wifi = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_level_mix(cell))
    print(render_level_mix(wifi))
    # The Markov model includes OFF rounds, which pool arrivals and roll
    # budget over; delivered presentations at equal budget skew richer.
    richer = sum(
        _rich_fraction(wifi.mix[b], 4) >= _rich_fraction(cell.mix[b], 4)
        for b in budgets
    )
    assert richer >= 2


def test_bench_fig5d_user_categories(benchmark, workload, annotations, bench_users):
    points = benchmark.pedantic(
        lambda: figure5d_user_categories(
            workload, annotations=annotations, user_ids=bench_users, n_buckets=4
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_user_categories(points))
    assert len(points) >= 2
    # Heavier-volume categories accrue more total utility.
    assert points[-1].mean_utility > points[0].mean_utility
