"""Benchmark: the live notification service under a flash crowd.

Three gates pin the service's overload contract (ISSUE 6):

* **Conservation** -- every ingested item is accounted for exactly once
  across delivered / shed / dead-lettered / deferred / pending; the
  ledger's ``conservation_error`` is zero even while the degradation
  ladder is escalating and sinks are failing.
* **Bounded behaviour** -- per-user queues never exceed their configured
  bound (high-water mark is tracked across every drain), and delivery
  latency stays under the item TTL: overload degrades delivery, it never
  degrades latency into silent staleness.
* **Determinism** -- two runs with the same :class:`DemoConfig` produce
  bit-identical payloads once wall-clock and platform fields are masked.

Every run (re)writes ``BENCH_service.json`` at the repo root -- the
machine-readable service-health trajectory that CI uploads as an
artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.service.chaos import FlashCrowdConfig
from repro.service.degrade import PressureLevel
from repro.service.harness import DemoConfig, run_demo
from repro.service.health import write_bench

BENCH_OUT = Path(
    os.environ.get(
        "BENCH_SERVICE_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
)

#: The gate scenario: a 12-minute session whose middle third is a flash
#: crowd, sized so the ladder demonstrably escalates *and* recovers.
GATE_CONFIG = DemoConfig(users=12, rounds=12)


def _fingerprint(payload: dict) -> str:
    """Canonical JSON with wall-clock / platform fields masked."""
    doc = json.loads(json.dumps(payload))
    doc.pop("platform", None)
    throughput = doc.get("throughput", {})
    for key in ("wall_seconds", "ingested_per_wall_s", "delivered_per_wall_s"):
        throughput.pop(key, None)
    return json.dumps(doc, sort_keys=True)


@pytest.fixture(scope="module")
def demo_run():
    return run_demo(GATE_CONFIG)


def test_conservation_and_payload(demo_run):
    """Ledger closes exactly; BENCH_service.json lands with the schema."""
    payload = demo_run.payload
    accounting = payload["accounting"]
    assert accounting["error"] == 0
    assert accounting["ingested"] == (
        accounting["delivered"]
        + accounting["shed"]
        + accounting["dead_lettered"]
        + accounting["deferred_pending"]
        + accounting["pending"]
    )
    assert accounting["ingested"] > 0

    out = write_bench(BENCH_OUT, payload)
    written = json.loads(out.read_text(encoding="utf-8"))
    assert written["schema"] == "richnote-bench-service/1"
    assert written["meta"]["chaos"] == "flash-crowd"
    assert {"throughput", "latency_s", "accounting", "pressure", "sinks"} <= set(
        written
    )
    print(f"\n# wrote {out} ({accounting['ingested']} ingested)")


def test_queues_and_latency_stay_bounded(demo_run):
    """Overload sheds explicitly: bounds and TTL hold through the crowd."""
    service = demo_run.service
    assert service.frontier.high_water() <= service.config.queue_bound
    stats = service.stats
    assert stats.delivered > 0
    assert stats.shed > 0  # the crowd actually overflowed something
    p99 = stats.latency_quantile(0.99)
    assert 0.0 < p99 <= GATE_CONFIG.ttl_seconds


def test_ladder_escalates_and_recovers(demo_run):
    controller = demo_run.service.controller
    assert controller.max_level >= PressureLevel.DEFER
    assert controller.level is PressureLevel.NORMAL
    assert demo_run.service.stats.readmitted > 0


def test_payload_deterministic_across_runs(demo_run):
    twin = run_demo(GATE_CONFIG)
    assert _fingerprint(twin.payload) == _fingerprint(demo_run.payload)


def test_quiet_scenario_never_degrades():
    """Without the crowd the ladder stays NORMAL and nothing is shed."""
    config = DemoConfig(
        users=6,
        rounds=4,
        chaos="none",
        p_outage=0.0,
        flash_crowd=FlashCrowdConfig(
            n_users=6,
            duration_seconds=4 * 60.0,
            base_rate=0.5,
            crowd_multiplier=1.0,
        ),
    )
    run = run_demo(config)
    assert run.service.controller.max_level is PressureLevel.NORMAL
    assert run.payload["accounting"]["error"] == 0
    assert run.service.stats.shed_queue_full == 0
