"""Benchmark: multi-channel delivery under a flash crowd on a shared cell.

Gates of the channel refactor (ISSUE 9):

* **Cross-user coupling is real** -- with the shared per-cell byte pool
  enabled, bystanders on the crowd's cell lose measurable utility
  relative to the uncoupled replay of the *same* arrival schedule, while
  the control cell (no crowd) is untouched.
* **Per-channel accounting closes** -- the delivery engine's byte
  conservation error is exactly zero in both runs, and the payload
  carries per-channel delivered / shed / dead-letter breakdowns.
* **Determinism** -- two runs from the same config produce bit-identical
  payloads once platform fields are masked.

Every run (re)writes ``BENCH_channels.json`` at the repo root -- the
machine-readable coupling report CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.channels_bench import (
    SCHEMA,
    ChannelsBenchConfig,
    bench_channels,
    write_channels_report,
)

BENCH_OUT = Path(
    os.environ.get(
        "BENCH_CHANNELS_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_channels.json",
    )
)

GATE_CONFIG = ChannelsBenchConfig()


def _fingerprint(payload: dict) -> str:
    doc = json.loads(json.dumps(payload))
    doc.pop("platform", None)
    return json.dumps(doc, sort_keys=True)


@pytest.fixture(scope="module")
def payload():
    return bench_channels(GATE_CONFIG)


def test_flash_crowd_degrades_shared_cell_bystanders(payload):
    """The headline gate: nonzero cross-user degradation, clean control."""
    shared = payload["coupling"]["shared_bystanders"]
    control = payload["coupling"]["control_bystanders"]
    assert shared["utility_drop"] > 0.0
    assert shared["drop_fraction"] > 0.05
    # The control cell shares the config but not the tower: the pool must
    # not have been the binding constraint there.
    assert abs(control["drop_fraction"]) < 0.01
    assert shared["drop_fraction"] > 5 * abs(control["drop_fraction"])


def test_pool_contention_is_on_the_crowd_cell(payload):
    cells = payload["coupled"]["cells"]
    shared = cells["0"]
    control = cells["1"]
    assert shared["denied_bytes"] > 0
    assert shared["contended_grants"] > 0
    # Rolled-over budgets inflate *requests* on both cells, so some
    # denial shows up even where nothing starves; the crowd cell's
    # denial must still dwarf the control cell's.
    assert shared["denied_bytes"] > 10 * control["denied_bytes"]
    # Consumption can never exceed the per-round refill times the rounds.
    budget = GATE_CONFIG.pool_bytes_per_round * GATE_CONFIG.rounds
    assert shared["consumed_bytes"] <= budget
    assert control["consumed_bytes"] <= budget


def test_per_channel_breakdowns_and_conservation(payload):
    """Ledger closes exactly; channels each report their own counters."""
    for run in ("coupled", "uncoupled"):
        doc = payload[run]
        assert doc["conservation_error_bytes"] == 0.0
        per_channel = doc["per_channel"]
        assert per_channel  # at least one channel carried traffic
        for row in per_channel.values():
            assert set(row) == {
                "delivered",
                "shed",
                "dead_letters",
                "retries_scheduled",
                "bytes_delivered",
            }
            assert row["dead_letters"] <= row["shed"]
        assert (
            sum(row["delivered"] for row in per_channel.values())
            == doc["totals"]["delivered"]
        )
        assert doc["totals"]["delivered"] > 0
        assert doc["totals"]["dead_letters"] > 0  # faults actually fired


def test_payload_lands_with_schema(payload):
    write_channels_report(BENCH_OUT, payload)
    written = json.loads(BENCH_OUT.read_text(encoding="utf-8"))
    assert written["schema"] == SCHEMA
    assert {"meta", "coupled", "uncoupled", "coupling"} <= set(written)
    assert written["meta"]["channels"] == ["push", "inapp", "email"]
    print(
        f"\n# wrote {BENCH_OUT} "
        f"(shared-cell bystander drop "
        f"{written['coupling']['shared_bystanders']['drop_fraction']:.1%})"
    )


def test_payload_deterministic_across_runs(payload):
    twin = bench_channels(GATE_CONFIG)
    assert _fingerprint(twin) == _fingerprint(payload)
