"""Ablation benchmarks for RichNote's design choices (DESIGN.md Section 5).

1. **Learned vs oracle content utility** -- how much headroom classifier
   error leaves on the table: rerun the headline comparison with U_c taken
   from ground truth.
2. **Aging** -- disable the recency decay and show late deliveries stop
   being penalized (UTIL closes the utility gap at starved budgets),
   demonstrating why the aging factor matters for the Fig. 4(a) shape.
3. **Lyapunov V extremes vs baselines** -- V -> 0 degenerates toward pure
   queue-draining (utility drops); the default V recovers it.
"""

from dataclasses import replace

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import UtilityAnnotations, run_experiment

BUDGET_MB = 10.0


def test_bench_oracle_vs_learned_utility(benchmark, workload, bench_users, annotations):
    def run():
        config = ExperimentConfig(weekly_budget_mb=BUDGET_MB)
        oracle_annotations = UtilityAnnotations.train(workload, oracle=True)
        learned = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, bench_users
        )
        oracle = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            config,
            oracle_annotations,
            bench_users,
        )
        return learned, oracle

    learned, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: learned vs oracle content utility (RichNote, 10MB)")
    print(f"learned: total_utility={learned.aggregate.total_utility:.1f} "
          f"precision={learned.aggregate.precision:.3f}")
    print(f"oracle:  total_utility={oracle.aggregate.total_utility:.1f} "
          f"precision={oracle.aggregate.precision:.3f}")
    # Oracle scoring concentrates utility on truly-clicked items.
    assert oracle.aggregate.precision >= learned.aggregate.precision - 0.02
    assert learned.aggregate.delivery_ratio > 0.95


def test_bench_aging_ablation(benchmark, workload, annotations, bench_users):
    def run():
        aged = ExperimentConfig(weekly_budget_mb=2.0)
        unaged = replace(aged, aging_tau_seconds=None)
        rows = {}
        for label, config in (("aged", aged), ("no-aging", unaged)):
            richnote = run_experiment(
                workload, MethodSpec(Method.RICHNOTE), config, annotations,
                bench_users,
            )
            util = run_experiment(
                workload, MethodSpec(Method.UTIL, 3), config, annotations,
                bench_users,
            )
            rows[label] = (
                richnote.aggregate.total_utility,
                util.aggregate.total_utility,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: recency aging of content utility (2MB budget)")
    print("setting    RichNote   UTIL-L3   ratio")
    for label, (richnote, util) in rows.items():
        print(f"{label:<10} {richnote:9.1f} {util:9.1f} {richnote / util:7.2f}")
    aged_ratio = rows["aged"][0] / rows["aged"][1]
    unaged_ratio = rows["no-aging"][0] / rows["no-aging"][1]
    # Aging is what penalizes UTIL's days-late deliveries: without it the
    # baseline closes (or inverts) the gap at starved budgets.
    assert aged_ratio > unaged_ratio


def test_bench_v_extremes(benchmark, workload, annotations, bench_users):
    def run():
        rows = {}
        for v in (0.0, 1000.0):
            config = ExperimentConfig(weekly_budget_mb=10.0, lyapunov_v=v)
            result = run_experiment(
                workload, MethodSpec(Method.RICHNOTE), config, annotations,
                bench_users,
            )
            rows[v] = (
                result.aggregate.total_utility,
                result.aggregate.delivery_ratio,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: Lyapunov V extremes (10MB budget)")
    print("V          total_utility  delivery")
    for v, (utility, delivery) in rows.items():
        print(f"{v:<10g} {utility:13.1f} {delivery:9.3f}")
    # V=0 ignores utility (pure queue drain): still delivers, lower utility.
    assert rows[0.0][1] > 0.9
    assert rows[1000.0][0] >= rows[0.0][0]


def test_bench_wifi_energy(benchmark, workload, annotations, bench_users):
    """WiFi availability cuts download energy at equal budget.

    Under the Markov WIFI/CELL/OFF model a third of connected rounds run
    on WiFi (0.007 J/KB vs 3G's 0.025 J/KB), so the same delivered volume
    costs less energy -- the opportunity the Lyapunov energy term and
    prefetching literature (refs [14][15]) both exploit.
    """
    from repro.experiments.config import NetworkMode

    def run():
        rows = {}
        for mode in (NetworkMode.CELL_ONLY, NetworkMode.MARKOV):
            config = ExperimentConfig(weekly_budget_mb=20.0, network_mode=mode)
            result = run_experiment(
                workload, MethodSpec(Method.RICHNOTE), config, annotations,
                bench_users,
            )
            rows[mode] = (
                result.aggregate.delivered_mb,
                result.aggregate.energy_kilojoules,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# Ablation: connectivity mix vs download energy (20MB budget)")
    print("mode        delivered_MB   energy_kJ   kJ/MB")
    for mode, (delivered, energy) in rows.items():
        print(f"{mode.value:<11} {delivered:>12.1f} {energy:>11.2f} "
              f"{energy / delivered:>7.3f}")
    cell_rate = rows[NetworkMode.CELL_ONLY][1] / rows[NetworkMode.CELL_ONLY][0]
    markov_rate = rows[NetworkMode.MARKOV][1] / rows[NetworkMode.MARKOV][0]
    assert markov_rate < cell_rate
