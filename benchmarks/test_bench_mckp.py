"""Benchmark/ablation: the greedy MCKP selector (Algorithm 1).

Two claims from Section III-C / IV:

* the greedy integral solution is within one upgrade's profit of the
  optimum (verified against the exact DP on moderate instances);
* the heuristic is fast -- O(n + k log n)-ish per round -- so per-round,
  per-user selection scales (timed on a 2000-item instance).
"""

import random

from repro.core.mckp import (
    MckpInstance,
    MckpItem,
    fractional_upper_bound,
    select_presentations,
    solve_exact_dp,
)
from repro.core.presentations import build_audio_ladder


def ladder_instance(n_items: int, budget: int, seed: int = 0) -> MckpInstance:
    """Items with the paper's audio ladder scaled by random content utility."""
    rng = random.Random(seed)
    ladder = build_audio_ladder()
    sizes = tuple(ladder.size(level) for level in range(ladder.max_level + 1))
    items = []
    for key in range(n_items):
        content_utility = rng.random()
        profits = tuple(
            content_utility * ladder.utility(level)
            for level in range(ladder.max_level + 1)
        )
        items.append(MckpItem(key=key, sizes=sizes, profits=profits))
    return MckpInstance(items=tuple(items), budget=budget)


def test_bench_mckp_greedy_speed(benchmark):
    instance = ladder_instance(n_items=2000, budget=200_000_000, seed=1)
    solution = benchmark(select_presentations, instance)
    assert solution.total_size <= instance.budget
    assert solution.total_profit > 0


def test_bench_mckp_optimality_gap(benchmark):
    """Greedy vs exact DP vs fractional bound on a scaled-down ladder."""

    def run():
        rows = []
        for seed in range(5):
            rng = random.Random(seed)
            # Small byte units keep the DP tractable.
            items = []
            for key in range(12):
                content_utility = rng.random()
                sizes = (0, 2, 102, 202, 402, 602, 802)
                base = build_audio_ladder()
                profits = tuple(
                    content_utility * base.utility(level) for level in range(7)
                )
                items.append(MckpItem(key=key, sizes=sizes, profits=profits))
            instance = MckpInstance(items=tuple(items), budget=1500)
            greedy = select_presentations(instance).total_profit
            optimum = solve_exact_dp(instance).total_profit
            bound = fractional_upper_bound(instance)
            max_gain = max(
                item.profits[level + 1] - item.profits[level]
                for item in instance.items
                for level in range(len(item.sizes) - 1)
            )
            rows.append((seed, greedy, optimum, bound, max_gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("# MCKP ablation: greedy vs exact DP vs fractional bound")
    print("seed     greedy    optimum   LP-bound   gap%")
    for seed, greedy, optimum, bound, max_gain in rows:
        gap = 100.0 * (optimum - greedy) / optimum if optimum else 0.0
        print(f"{seed:>4} {greedy:10.4f} {optimum:10.4f} {bound:10.4f} {gap:6.2f}")
        assert greedy <= optimum + 1e-9 <= bound + 1e-6
        assert greedy >= optimum - max_gain - 1e-9
