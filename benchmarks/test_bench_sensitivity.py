"""Benchmark: Lyapunov control-knob sensitivity (Section V-D5).

"We conducted experiments measuring the sensitivity of RichNote to
Lyapunov control knob, V, and observe that RichNote performs uniformly
better in all these settings."

Expected shape: total utility varies mildly across V spanning three
orders of magnitude, delivery stays ~100%, and the scheduling-queue
backlog remains bounded (larger V tolerates more backlog by design, but
stability is preserved).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import v_sensitivity
from repro.experiments.reporting import render_sensitivity

V_VALUES = (10.0, 100.0, 1000.0, 10000.0)


def test_bench_v_sensitivity(benchmark, workload, annotations, bench_users):
    config = ExperimentConfig(weekly_budget_mb=10.0)
    points = benchmark.pedantic(
        lambda: v_sensitivity(
            workload, V_VALUES, config, annotations, bench_users
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sensitivity(points))
    utilities = [p.total_utility for p in points]
    # Uniformly good: no V setting collapses utility or delivery.
    assert min(utilities) > 0.6 * max(utilities)
    for point in points:
        assert point.delivery_ratio > 0.95
        # Backlog bounded: well under one round of full-ladder arrivals.
        assert point.mean_backlog_bytes < 50e6
