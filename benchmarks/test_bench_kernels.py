"""Benchmark: array decision kernels vs the legacy per-object MCKP path.

The runtime refactor's performance claim: building the Lyapunov-adjusted
profit matrix with :mod:`repro.runtime.kernels` (one numpy pass over the
whole queue) beats the pre-refactor path (one :class:`MckpItem` object and
one ``adjusted_profile`` python loop per queue item) by >= 2x on a
1000-item queue, while choosing *bit-identical* selections.

Measured here (python 3.11, numpy 2.4): ~6.7x (legacy ~16.9 ms, kernels
~2.5 ms per select).  Peak allocation per selection round is comparable
(tracemalloc: ~437 KB legacy vs ~482 KB array -- MckpItem tuples traded
for two (n, k) float64 matrices); the durable memory win is in the
record types: 10k of the pre-refactor dict-based ``Delivery`` instances
held ~1.45 MB (~145 B each), while the frozen ``__slots__`` dataclass in
:mod:`repro.runtime.types` holds ~0.97 MB (~97 B each, -33%).
"""

from __future__ import annotations

import random
import timeit

from repro.core.content import ContentItem, ContentKind
from repro.core.lyapunov import LyapunovController, LyapunovState
from repro.core.mckp import MckpInstance, MckpItem, select_presentations
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.runtime.policy import RichNotePolicy, RoundContext

N_ITEMS = 1000
BUDGET = 2_000_000
NOW = 3600.0


def estimate_energy(size_bytes: int) -> float:
    """Deterministic stand-in for the device's per-transfer estimate."""
    return 0.35 + size_bytes * 2.5e-6


def build_queue(n_items: int, seed: int = 7) -> list[ContentItem]:
    rng = random.Random(seed)
    ladder = build_audio_ladder()
    return [
        ContentItem(
            item_id=item_id,
            user_id=1,
            kind=ContentKind.FRIEND_FEED,
            created_at=rng.uniform(0.0, NOW),
            ladder=ladder,
            content_utility=rng.random(),
        )
        for item_id in range(n_items)
    ]


def make_context(items: list[ContentItem]) -> RoundContext:
    backlog = float(sum(item.ladder.total_size() for item in items))
    return RoundContext(
        now=NOW,
        effective_budget=BUDGET,
        items=items,
        backlog_bytes=backlog,
        energy_available_joules=2_500.0,
        utility_model=CombinedUtilityModel(aging=ExponentialAging(7200.0)),
        estimate_energy=estimate_energy,
    )


def legacy_select(ctx: RoundContext) -> list[tuple[ContentItem, int]]:
    """The pre-refactor per-object path, verbatim semantics.

    One ``utilities_for_ladder`` call, one energy estimate per level, one
    ``adjusted_profile`` python loop and one ``MckpItem`` per queue item,
    then the object-based Algorithm 1.
    """
    controller = LyapunovController()
    state = LyapunovState(
        q_bytes=ctx.backlog_bytes, p_joules=ctx.energy_available_joules
    )
    mckp_items = []
    for item in ctx.items:
        ladder = item.ladder
        utilities = ctx.utility_model.utilities_for_ladder(item, ctx.now)
        energies = [0.0] + [
            ctx.estimate_energy(ladder.size(level))
            for level in range(1, ladder.max_level + 1)
        ]
        profits = controller.adjusted_profile(
            state, float(ladder.total_size()), energies, utilities
        )
        sizes = tuple(ladder.size(level) for level in range(ladder.max_level + 1))
        mckp_items.append(
            MckpItem(key=item.item_id, sizes=sizes, profits=tuple(profits))
        )
    solution = select_presentations(
        MckpInstance(items=tuple(mckp_items), budget=ctx.effective_budget)
    )
    by_id = {item.item_id: item for item in ctx.items}
    return [
        (by_id[key], level)
        for key, level in solution.levels.items()
        if level > 0
    ]


def test_bench_kernel_path_speed(benchmark):
    items = build_queue(N_ITEMS)
    ctx = make_context(items)
    policy = RichNotePolicy()
    decision = benchmark(policy.select, ctx)
    assert decision.selections


def test_kernel_selections_bit_identical_to_legacy_path():
    items = build_queue(N_ITEMS)
    ctx = make_context(items)
    decision = RichNotePolicy().select(ctx)
    legacy = legacy_select(ctx)
    assert [
        (item.item_id, level) for item, level in decision.selections
    ] == [(item.item_id, level) for item, level in legacy]


def test_kernel_path_at_least_2x_faster_than_legacy():
    items = build_queue(N_ITEMS)
    ctx = make_context(items)
    policy = RichNotePolicy()
    policy.select(ctx)  # warm caches / numpy import costs
    legacy_select(ctx)

    kernel_s = min(timeit.repeat(lambda: policy.select(ctx), number=3, repeat=7)) / 3
    legacy_s = min(timeit.repeat(lambda: legacy_select(ctx), number=3, repeat=7)) / 3
    speedup = legacy_s / kernel_s
    print(
        f"\n# kernel vs legacy on {N_ITEMS}-item queue: "
        f"legacy {legacy_s * 1e3:.2f} ms, kernel {kernel_s * 1e3:.2f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"array kernels only {speedup:.2f}x over legacy path"
