# RichNote reproduction -- common targets.

PYTHON ?= python

.PHONY: install test chaos lint analyze analyze-sarif bench bench-sweep bench-scale bench-service bench-channels artifacts examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Chaos-injection suite: randomized fault schedules at three fixed seeds
# (CHAOS_SEEDS in tests/test_failure_injection.py), so failures replay.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m chaos -q

# Style lint (ruff). Fails loudly when ruff is missing under CI (or with
# REQUIRE_RUFF=1) instead of silently skipping -- a green lint job must
# mean the linter actually ran.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	elif [ -n "$$CI" ] || [ -n "$$REQUIRE_RUFF" ]; then \
		echo "error: ruff is required (CI/REQUIRE_RUFF set) but not installed" >&2; \
		exit 1; \
	else \
		echo "ruff not installed; skipping lint (set REQUIRE_RUFF=1 to fail instead)"; \
	fi

# Domain-invariant lint (richlint): unit safety, determinism, float and
# dataclass hygiene, conservation markers, async safety. Four passes:
#  1. src/ must be clean against the baseline (--stats keeps the baseline
#     burn-down visible on every run);
#  2. dogfood: the analyzer must analyze its own sources clean with NO
#     baseline escape hatch;
#  3. tests/ + benchmarks/ enforce the scoped rule families that are
#     meaningful there (determinism R2, dataclass hygiene R4, async
#     safety R7) -- fixture files for the analyzer itself excluded;
#  4. everything else runs warn-only (assertion idioms like exact float
#     equality are fine in tests).
analyze:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro --stats
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro/analysis --no-baseline
	PYTHONPATH=src $(PYTHON) -m repro.analysis tests benchmarks \
		--select R2,R4,R7 --exclude 'tests/fixtures/*'
	PYTHONPATH=src $(PYTHON) -m repro.analysis tests benchmarks examples \
		--warn-only --exclude 'tests/fixtures/*'

# Machine-readable results: one SARIF 2.1.0 log for the whole tree
# (src enforced elsewhere; this pass is for CI artifact + code scanning,
# so it never gates).
analyze-sarif:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro tests benchmarks \
		--warn-only --exclude 'tests/fixtures/*' \
		--sarif-out richlint.sarif
	@echo "wrote richlint.sarif"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Sweep-engine gates (parity, payload boundary, >=2x speedup on
# multi-core) on a tiny grid; writes BENCH_sweep.json at the repo root.
bench-sweep:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_sweep.py -q -rs -s

# Population-scale gates (columnar/scalar digest parity in-bench, >=5x
# columnar speedup at the 10k-user point, plus the schema-/2 scenarios:
# >=1.8x multi-core shard-parallel on >=2-core hosts and >=3x batched
# multichannel kernels); writes BENCH_scalability.json at the repo root.
# Tune with BENCH_SCALE_USERS=10000,100000 (CI smoke uses a small
# count), BENCH_SCALE_WORKERS=N (multi-core scenario worker count),
# BENCH_SCALE_MC_SAMPLE=N (multichannel sample, 0 disables),
# BENCH_SCALE_1M=1 opts into the million-user leg.
bench-scale:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_bench_scalability.py::test_bench_scale_curve -q -rs -s

# Live-service gates (exact conservation under a flash crowd, queue
# bound + TTL invariants, deterministic payload); writes
# BENCH_service.json at the repo root.
bench-service:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_service.py -q -rs -s

# Multi-channel gates (nonzero cross-user degradation on the shared
# cell, clean control cell, exact per-channel conservation,
# deterministic payload); writes BENCH_channels.json at the repo root.
bench-channels:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_channels.py -q -rs -s

# Regenerate every figure artifact from a fresh synthetic trace.
artifacts:
	$(PYTHON) -m repro.cli generate-trace --preset medium --out /tmp/richnote-trace.jsonl.gz
	$(PYTHON) -m repro.cli figures --trace /tmp/richnote-trace.jsonl.gz --out artifacts --users 25

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/presentation_survey.py
	$(PYTHON) examples/pubsub_broker.py
	$(PYTHON) examples/multimedia_feeds.py
	$(PYTHON) examples/live_system.py
	$(PYTHON) examples/spotify_week.py --budgets 1,5,20,100 --users 10

clean:
	rm -rf artifacts .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
