# RichNote reproduction -- common targets.

PYTHON ?= python

.PHONY: install test bench artifacts examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regenerate every figure artifact from a fresh synthetic trace.
artifacts:
	$(PYTHON) -m repro.cli generate-trace --preset medium --out /tmp/richnote-trace.jsonl.gz
	$(PYTHON) -m repro.cli figures --trace /tmp/richnote-trace.jsonl.gz --out artifacts --users 25

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/presentation_survey.py
	$(PYTHON) examples/pubsub_broker.py
	$(PYTHON) examples/multimedia_feeds.py
	$(PYTHON) examples/live_system.py
	$(PYTHON) examples/spotify_week.py --budgets 1,5,20,100 --users 10

clean:
	rm -rf artifacts .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
